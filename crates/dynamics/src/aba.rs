//! Articulated Body Algorithm (forward dynamics), the software baseline
//! the paper deliberately does *not* instantiate in hardware (§III-A) —
//! we implement it as an independent reference for validating the
//! `FD = M⁻¹·(τ - C)` path.

use crate::mminv::invert_spd_small;
use crate::workspace::DynamicsWorkspace;
use crate::DynamicsError;
use rbd_model::RobotModel;
use rbd_spatial::{ForceVec, MatN, MotionVec, VecN};

/// Forward dynamics `q̈ = ABA(q, q̇, τ, f_ext)` — O(N) articulated-body
/// algorithm with multi-DOF joint support.
///
/// `fext` entries are world-frame spatial forces per body.
///
/// # Errors
/// Returns [`DynamicsError::SingularMassMatrix`] when a joint-space
/// articulated inertia block is singular (physically impossible for
/// positive-mass models).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn aba(
    model: &RobotModel,
    ws: &mut DynamicsWorkspace,
    q: &[f64],
    qd: &[f64],
    tau: &[f64],
    fext: Option<&[ForceVec]>,
) -> Result<Vec<f64>, DynamicsError> {
    let nb = model.num_bodies();
    assert_eq!(q.len(), model.nq(), "q dimension");
    assert_eq!(qd.len(), model.nv(), "qd dimension");
    assert_eq!(tau.len(), model.nv(), "tau dimension");
    if let Some(f) = fext {
        assert_eq!(f.len(), nb, "fext dimension");
    }

    ws.update_kinematics(model, q);
    let a0 = MotionVec::new(rbd_spatial::Vec3::zero(), -model.gravity);

    // Pass 1: velocities, bias accelerations, articulated quantities init.
    for i in 0..nb {
        let vo = model.v_offset(i);
        let ni = ws.s_off[i + 1] - ws.s_off[i];
        let vj = MotionVec::weighted_sum(&ws.s[vo..vo + ni], &qd[vo..vo + ni]);
        let v = match model.topology().parent(i) {
            Some(p) => ws.xup[i].apply_motion(&ws.v[p]) + vj,
            None => vj,
        };
        ws.v[i] = v;
        ws.c_bias[i] = v.cross_motion(&vj);
        let inertia = model.link_inertia(i);
        ws.ia[i] = inertia.to_mat6();
        let mut pa = v.cross_force(&inertia.mul_motion(&v));
        if let Some(fx) = fext {
            pa -= ws.xworld[i].apply_force(&fx[i]);
        }
        ws.pa[i] = pa;
    }

    // Per-joint factor storage.
    let mut u_cols: Vec<Vec<ForceVec>> = vec![Vec::new(); nb];
    let mut d_inv: Vec<MatN> = vec![MatN::zeros(0, 0); nb];
    let mut u_bias: Vec<VecN> = vec![VecN::zeros(0); nb];

    // Pass 2: articulated inertia backward sweep.
    for i in (0..nb).rev() {
        let vo = model.v_offset(i);
        let ni = ws.s_off[i + 1] - ws.s_off[i];
        let cols = &ws.s[vo..vo + ni];
        let mut u = vec![ForceVec::zero(); ni];
        ws.ia[i].mul_motion_to_force_batch(cols, &mut u);
        let mut d = MatN::zeros(ni, ni);
        for a in 0..ni {
            for b in 0..ni {
                d[(a, b)] = cols[a].dot_force(&u[b]);
            }
        }
        let dinv = d.inverse_spd()?;
        let mut ub = VecN::zeros(ni);
        for k in 0..ni {
            ub[k] = tau[vo + k] - cols[k].dot_force(&ws.pa[i]);
        }

        if let Some(p) = model.topology().parent(i) {
            // Ia = IA - U D⁻¹ Uᵀ
            let mut ia = ws.ia[i];
            ia.sub_outer_weighted(&u, |a, b| dinv[(a, b)]);
            // pa' = pA + Ia c + U D⁻¹ u
            let mut pa = ws.pa[i] + ia.mul_motion_to_force(&ws.c_bias[i]);
            for a in 0..ni {
                let mut coeff = 0.0;
                for b in 0..ni {
                    coeff += dinv[(a, b)] * ub[b];
                }
                pa += u[a] * coeff;
            }
            ia.add_congruence_xform_sym(&ws.xup[i], &mut ws.ia[p]);
            ws.pa[p] += ws.xup[i].inv_apply_force(&pa);
        }

        u_cols[i] = u;
        d_inv[i] = dinv;
        u_bias[i] = ub;
    }

    // Pass 3: accelerations forward sweep.
    let mut qdd = vec![0.0; model.nv()];
    for i in 0..nb {
        let vo = model.v_offset(i);
        let ni = ws.s_off[i + 1] - ws.s_off[i];
        let a_par = match model.topology().parent(i) {
            Some(p) => ws.xup[i].apply_motion(&ws.a[p]),
            None => ws.xup[i].apply_motion(&a0),
        };
        let a_prime = a_par + ws.c_bias[i];
        for k in 0..ni {
            let mut rhs = u_bias[i][k];
            // u - Uᵀ a'
            // (apply D⁻¹ after assembling the residual vector)
            rhs -= u_cols[i][k].dot_motion(&a_prime);
            qdd[vo + k] = rhs;
        }
        // qdd_i = D⁻¹ (u - Uᵀ a')
        let mut out = vec![0.0; ni];
        for a in 0..ni {
            for b in 0..ni {
                out[a] += d_inv[i][(a, b)] * qdd[vo + b];
            }
        }
        let mut a_i = a_prime;
        for (k, s) in ws.s[vo..vo + ni].iter().enumerate() {
            qdd[vo + k] = out[k];
            a_i += *s * out[k];
        }
        ws.a[i] = a_i;
    }
    Ok(qdd)
}

/// [`aba`] into a caller-provided output with **zero steady-state heap
/// allocation**: every per-joint factor lives in the workspace
/// ([`DynamicsWorkspace::u_cols`] for `U = I^A S`,
/// [`DynamicsWorkspace::d_inv`] for the joint-space inverses,
/// [`DynamicsWorkspace::aba_ub`] for the joint-space bias), and the
/// joint-space blocks are inverted on the stack through the same
/// unpivoted-LDLᵀ routine MMinvGen uses.
///
/// This is the scalar **op-sequence reference for the K-lane kernels**
/// (`crate::lanes::forward_dynamics_aba_lanes_in_ws` performs exactly
/// this sequence per lane, and the lane tests pin it bit-identically),
/// and the O(n) forward-dynamics core of the RK4 rollout kernels the
/// sampling-MPC workloads run.
///
/// # Errors
/// Returns [`DynamicsError::SingularMassMatrix`] when a joint-space
/// articulated inertia block is singular.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn aba_in_ws(
    model: &RobotModel,
    ws: &mut DynamicsWorkspace,
    q: &[f64],
    qd: &[f64],
    tau: &[f64],
    fext: Option<&[ForceVec]>,
    qdd_out: &mut [f64],
) -> Result<(), DynamicsError> {
    let nb = model.num_bodies();
    assert_eq!(q.len(), model.nq(), "q dimension");
    assert_eq!(qd.len(), model.nv(), "qd dimension");
    assert_eq!(tau.len(), model.nv(), "tau dimension");
    assert_eq!(qdd_out.len(), model.nv(), "qdd output dimension");
    if let Some(f) = fext {
        assert_eq!(f.len(), nb, "fext dimension");
    }

    ws.update_kinematics(model, q);
    let a0 = MotionVec::new(rbd_spatial::Vec3::zero(), -model.gravity);

    // Field-disjoint borrows of the workspace buffers for the sweeps.
    let DynamicsWorkspace {
        s,
        s_off,
        xup,
        xworld,
        v,
        a,
        c_bias,
        ia,
        pa,
        u_cols,
        d_inv,
        aba_ub,
        ..
    } = ws;

    // Pass 1: velocities, bias accelerations, articulated quantities init.
    for i in 0..nb {
        let vo = model.v_offset(i);
        let ni = s_off[i + 1] - s_off[i];
        let vj = MotionVec::weighted_sum(&s[vo..vo + ni], &qd[vo..vo + ni]);
        let vi = match model.topology().parent(i) {
            Some(p) => xup[i].apply_motion(&v[p]) + vj,
            None => vj,
        };
        v[i] = vi;
        c_bias[i] = vi.cross_motion(&vj);
        let inertia = model.link_inertia(i);
        ia[i] = inertia.to_mat6();
        let mut pai = vi.cross_force(&inertia.mul_motion(&vi));
        if let Some(fx) = fext {
            pai -= xworld[i].apply_force(&fx[i]);
        }
        pa[i] = pai;
    }

    // Pass 2: articulated inertia backward sweep; factors stay in the
    // workspace (`u_cols`, `d_inv`, `aba_ub`) for pass 3.
    for i in (0..nb).rev() {
        let vo = model.v_offset(i);
        let ni = s_off[i + 1] - s_off[i];
        let cols = &s[vo..vo + ni];
        ia[i].mul_motion_to_force_batch(cols, &mut u_cols[vo..vo + ni]);
        let mut d = [[0.0; 6]; 6];
        for (ar, drow) in cols.iter().zip(d.iter_mut()) {
            for (b, db) in drow.iter_mut().enumerate().take(ni) {
                *db = ar.dot_force(&u_cols[vo + b]);
            }
        }
        d_inv[i] = invert_spd_small(&d, ni)?;
        for k in 0..ni {
            aba_ub[vo + k] = tau[vo + k] - cols[k].dot_force(&pa[i]);
        }

        if let Some(p) = model.topology().parent(i) {
            // Ia = IA - U D⁻¹ Uᵀ
            let mut ia_i = ia[i];
            let dinv = &d_inv[i];
            ia_i.sub_outer_weighted(&u_cols[vo..vo + ni], |ar, b| dinv[ar][b]);
            // pa' = pA + Ia c + U D⁻¹ u
            let mut pai = pa[i] + ia_i.mul_motion_to_force(&c_bias[i]);
            for ar in 0..ni {
                let mut coeff = 0.0;
                for b in 0..ni {
                    coeff += dinv[ar][b] * aba_ub[vo + b];
                }
                pai += u_cols[vo + ar] * coeff;
            }
            ia_i.add_congruence_xform_sym(&xup[i], &mut ia[p]);
            pa[p] += xup[i].inv_apply_force(&pai);
        }
    }

    // Pass 3: accelerations forward sweep.
    for i in 0..nb {
        let vo = model.v_offset(i);
        let ni = s_off[i + 1] - s_off[i];
        let a_par = match model.topology().parent(i) {
            Some(p) => xup[i].apply_motion(&a[p]),
            None => xup[i].apply_motion(&a0),
        };
        let a_prime = a_par + c_bias[i];
        let mut rhs = [0.0; 6];
        for (k, r) in rhs.iter_mut().enumerate().take(ni) {
            *r = aba_ub[vo + k] - u_cols[vo + k].dot_motion(&a_prime);
        }
        // qdd_i = D⁻¹ (u - Uᵀ a')
        let mut out = [0.0; 6];
        let dinv = &d_inv[i];
        for (ar, o) in out.iter_mut().enumerate().take(ni) {
            for (b, r) in rhs.iter().enumerate().take(ni) {
                *o += dinv[ar][b] * r;
            }
        }
        let mut a_i = a_prime;
        for (k, sc) in s[vo..vo + ni].iter().enumerate() {
            qdd_out[vo + k] = out[k];
            a_i += *sc * out[k];
        }
        a[i] = a_i;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rnea::rnea;
    use rbd_model::{random_state, robots};

    fn roundtrip(model: &rbd_model::RobotModel, seed: u64, tol: f64) {
        let mut ws = DynamicsWorkspace::new(model);
        let s = random_state(model, seed);
        let qdd_in: Vec<f64> = (0..model.nv()).map(|k| 0.4 - 0.03 * k as f64).collect();
        let tau = rnea(model, &mut ws, &s.q, &s.qd, &qdd_in, None);
        let qdd = aba(model, &mut ws, &s.q, &s.qd, &tau, None).unwrap();
        for k in 0..model.nv() {
            assert!(
                (qdd[k] - qdd_in[k]).abs() < tol,
                "{} dof {k}: {} vs {}",
                model.name(),
                qdd[k],
                qdd_in[k]
            );
        }
    }

    #[test]
    fn inverts_rnea_iiwa() {
        roundtrip(&robots::iiwa(), 1, 1e-8);
    }

    #[test]
    fn inverts_rnea_hyq() {
        roundtrip(&robots::hyq(), 2, 1e-7);
    }

    #[test]
    fn inverts_rnea_atlas() {
        roundtrip(&robots::atlas(), 3, 1e-7);
    }

    #[test]
    fn inverts_rnea_random_trees() {
        for seed in 0..5 {
            roundtrip(&robots::random_tree(12, seed), seed + 10, 1e-7);
        }
    }

    #[test]
    fn inverts_rnea_with_external_forces() {
        let model = robots::hyq();
        let mut ws = DynamicsWorkspace::new(&model);
        let s = random_state(&model, 8);
        let fext: Vec<ForceVec> = (0..model.num_bodies())
            .map(|i| ForceVec::from_slice(&[0.1 * i as f64, -0.2, 0.3, 5.0, -2.0, 1.0 + i as f64]))
            .collect();
        let qdd_in: Vec<f64> = (0..model.nv()).map(|k| 0.1 * k as f64 - 0.5).collect();
        let tau = rnea(&model, &mut ws, &s.q, &s.qd, &qdd_in, Some(&fext));
        let qdd = aba(&model, &mut ws, &s.q, &s.qd, &tau, Some(&fext)).unwrap();
        for k in 0..model.nv() {
            assert!((qdd[k] - qdd_in[k]).abs() < 1e-7);
        }
    }

    #[test]
    fn in_ws_form_matches_allocating_aba_bitwise() {
        // `aba_in_ws` performs the same op sequence as `aba` (the small
        // joint-space inverse mirrors `MatN::inverse_spd` exactly), so
        // the outputs must agree bit-for-bit.
        for model in [robots::iiwa(), robots::hyq(), robots::atlas()] {
            let mut ws = DynamicsWorkspace::new(&model);
            let s = random_state(&model, 17);
            let tau: Vec<f64> = (0..model.nv()).map(|k| 0.6 - 0.07 * k as f64).collect();
            let reference = aba(&model, &mut ws, &s.q, &s.qd, &tau, None).unwrap();
            let mut qdd = vec![0.0; model.nv()];
            aba_in_ws(&model, &mut ws, &s.q, &s.qd, &tau, None, &mut qdd).unwrap();
            assert_eq!(qdd, reference, "{}", model.name());
        }
    }

    #[test]
    fn in_ws_form_supports_external_forces() {
        let model = robots::hyq();
        let mut ws = DynamicsWorkspace::new(&model);
        let s = random_state(&model, 21);
        let fext: Vec<ForceVec> = (0..model.num_bodies())
            .map(|i| ForceVec::from_slice(&[0.2, -0.1 * i as f64, 0.3, 2.0, -1.0, 0.5]))
            .collect();
        let tau: Vec<f64> = (0..model.nv()).map(|k| 0.1 * k as f64 - 0.4).collect();
        let reference = aba(&model, &mut ws, &s.q, &s.qd, &tau, Some(&fext)).unwrap();
        let mut qdd = vec![0.0; model.nv()];
        aba_in_ws(&model, &mut ws, &s.q, &s.qd, &tau, Some(&fext), &mut qdd).unwrap();
        assert_eq!(qdd, reference);
    }

    #[test]
    fn free_fall_acceleration() {
        // Unactuated floating body: base must accelerate at -g.
        let model = robots::hyq();
        let mut ws = DynamicsWorkspace::new(&model);
        let q = model.neutral_config();
        let zero = vec![0.0; model.nv()];
        let qdd = aba(&model, &mut ws, &q, &zero, &zero, None).unwrap();
        // Base linear z acceleration (dof 5) = -9.81; legs see no torque
        // but gravity is uniform so relative accelerations vanish.
        assert!((qdd[5] + 9.81).abs() < 1e-9, "qdd = {qdd:?}");
        for k in 0..3 {
            assert!(qdd[k].abs() < 1e-9); // no angular acceleration
        }
        for k in 6..model.nv() {
            assert!(qdd[k].abs() < 1e-9, "joint dof {k}: {}", qdd[k]);
        }
    }
}
