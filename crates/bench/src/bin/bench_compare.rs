//! CI bench-regression gate: diffs a freshly generated
//! `BENCH_derivatives.json` against the committed
//! `BENCH_derivatives.baseline.json` and **fails (exit 1) if any
//! median regressed past the noise threshold** (default **15%** —
//! above the ±10% box noise recorded for these kernels in CHANGES.md,
//! so the gate trips on real regressions rather than scheduler
//! jitter).
//!
//! ```text
//! bench_compare <current.json> <baseline.json> [--threshold 0.15]
//! ```
//!
//! New cases with no baseline counterpart are reported and allowed;
//! baseline cases that *vanished* from the current report fail the gate
//! too (a silently dropped benchmark can hide a regression).

use rbd_bench::compare::{compare, parse_report};
use rbd_bench::harness::fmt_ns;
use rbd_bench::print_table;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.15_f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--threshold needs a numeric value (e.g. 0.15)");
                    return ExitCode::from(2);
                };
                threshold = v;
            }
            _ => paths.push(a.clone()),
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        eprintln!("usage: bench_compare <current.json> <baseline.json> [--threshold 0.15]");
        return ExitCode::from(2);
    };

    let read = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        parse_report(&text).map_err(|e| format!("parsing {path}: {e}"))
    };
    let (current, baseline) = match (read(current_path), read(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let out = compare(&current, &baseline, threshold);
    let rows: Vec<Vec<String>> = out
        .compared
        .iter()
        .map(|r| {
            vec![
                r.name.clone(),
                fmt_ns(r.baseline_ns),
                fmt_ns(r.current_ns),
                format!("{:.3}x", r.ratio),
                if r.ratio > 1.0 + threshold {
                    "REGRESSED".into()
                } else {
                    "ok".into()
                },
            ]
        })
        .collect();
    let pct = format!("{:.0}%", threshold * 100.0);
    print_table(
        &format!("bench_compare — {current_path} vs {baseline_path} (threshold +{pct})",),
        &["case", "baseline", "current", "ratio", ""],
        &rows,
    );
    for name in &out.missing_in_baseline {
        println!("new case (no baseline, allowed): {name}");
    }
    for name in &out.missing_in_current {
        println!("MISSING from current report: {name}");
    }

    if !out.regressions.is_empty() || !out.missing_in_current.is_empty() {
        eprintln!(
            "bench_compare: {} regression(s), {} missing case(s)",
            out.regressions.len(),
            out.missing_in_current.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_compare: {} case(s) within +{pct} of baseline",
        out.compared.len()
    );
    ExitCode::SUCCESS
}
