//! CI bench-regression gate: diffs a freshly generated
//! `BENCH_derivatives.json` against the committed
//! `BENCH_derivatives.baseline.json` and **fails (exit 1) if any
//! median regressed past the noise threshold** (default **15%** —
//! above the ±10% box noise recorded for these kernels in CHANGES.md,
//! so the gate trips on real regressions rather than scheduler
//! jitter).
//!
//! ```text
//! bench_compare <current.json> <baseline.json> [--threshold 0.15]
//!               [--row-threshold <pattern>=<value|advisory>]...
//! ```
//!
//! `--row-threshold` installs per-row gating overrides: rows whose
//! name contains `<pattern>` are gated at `<value>` instead of the
//! global threshold, or merely *reported* when the value is the
//! literal `advisory` (used for the `rollout_lane*`/`mppi_*` rows
//! until a multi-core baseline is frozen — their absolute medians are
//! machine-class-bound). The first matching override wins.
//!
//! New cases with no baseline counterpart are reported and allowed;
//! baseline cases that *vanished* from the current report fail the gate
//! too (a silently dropped benchmark can hide a regression), **as does
//! a baseline case whose current median parses as `NaN`/`inf`** — a
//! non-finite median hides a regression just as effectively.

use rbd_bench::compare::{compare_with_overrides, parse_report, RowGate};
use rbd_bench::harness::fmt_ns;
use rbd_bench::print_table;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut threshold = 0.15_f64;
    let mut overrides: Vec<(String, RowGate)> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--threshold needs a numeric value (e.g. 0.15)");
                    return ExitCode::from(2);
                };
                threshold = v;
            }
            "--row-threshold" => {
                let Some(spec) = it.next() else {
                    eprintln!("--row-threshold needs <pattern>=<value|advisory>");
                    return ExitCode::from(2);
                };
                let Some((pat, val)) = spec.split_once('=') else {
                    eprintln!("--row-threshold spec {spec:?} is missing '='");
                    return ExitCode::from(2);
                };
                let gate = if val.eq_ignore_ascii_case("advisory") {
                    RowGate::Advisory
                } else {
                    match val.parse::<f64>() {
                        Ok(t) => RowGate::Threshold(t),
                        Err(_) => {
                            eprintln!(
                                "--row-threshold value {val:?} is neither numeric nor 'advisory'"
                            );
                            return ExitCode::from(2);
                        }
                    }
                };
                overrides.push((pat.to_string(), gate));
            }
            _ => paths.push(a.clone()),
        }
    }
    let [current_path, baseline_path] = paths.as_slice() else {
        eprintln!(
            "usage: bench_compare <current.json> <baseline.json> [--threshold 0.15] \
             [--row-threshold <pattern>=<value|advisory>]..."
        );
        return ExitCode::from(2);
    };

    let read = |path: &str| -> Result<_, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        parse_report(&text).map_err(|e| format!("parsing {path}: {e}"))
    };
    let (current, baseline) = match (read(current_path), read(baseline_path)) {
        (Ok(c), Ok(b)) => (c, b),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_compare: {e}");
            return ExitCode::from(2);
        }
    };

    let out = compare_with_overrides(&current, &baseline, threshold, &overrides);
    let advisory_names: Vec<&str> = out.advisory.iter().map(|r| r.name.as_str()).collect();
    let failing_names: Vec<&str> = out.regressions.iter().map(|r| r.name.as_str()).collect();
    let rows: Vec<Vec<String>> = out
        .compared
        .iter()
        .map(|r| {
            let verdict = if failing_names.contains(&r.name.as_str()) {
                "REGRESSED"
            } else if advisory_names.contains(&r.name.as_str()) {
                "advisory"
            } else {
                "ok"
            };
            vec![
                r.name.clone(),
                fmt_ns(r.baseline_ns),
                fmt_ns(r.current_ns),
                format!("{:.3}x", r.ratio),
                verdict.into(),
            ]
        })
        .collect();
    let pct = format!("{:.0}%", threshold * 100.0);
    print_table(
        &format!("bench_compare — {current_path} vs {baseline_path} (threshold +{pct})",),
        &["case", "baseline", "current", "ratio", ""],
        &rows,
    );
    for name in &out.missing_in_baseline {
        println!("new case (no baseline, allowed): {name}");
    }
    for r in &out.advisory {
        println!(
            "advisory drift (never fails): {} {:.3}x past +{pct}",
            r.name, r.ratio
        );
    }
    for name in &out.missing_in_current {
        println!("MISSING from current report: {name}");
    }

    if !out.regressions.is_empty() || !out.missing_in_current.is_empty() {
        eprintln!(
            "bench_compare: {} regression(s), {} missing case(s)",
            out.regressions.len(),
            out.missing_in_current.len()
        );
        return ExitCode::FAILURE;
    }
    println!(
        "bench_compare: {} case(s) within their gates ({} advisory)",
        out.compared.len(),
        out.advisory.len()
    );
    ExitCode::SUCCESS
}
