//! Derivative-throughput benchmark: single-thread latency of the
//! ΔRNEA/ΔFD kernels (allocating wrappers, the zero-allocation `*_into`
//! fast path, and both ΔID backends explicitly) plus batched
//! multi-thread throughput through `BatchEval`, emitting a
//! machine-readable `BENCH_derivatives.json` so future PRs have a perf
//! trajectory to compare against. The report embeds host metadata (CPU
//! count, `RBD_*` knobs, ISO-8601 timestamp) so committed rows are
//! self-describing across machines.
//!
//! Run with `cargo run --release -p rbd-bench --bin bench_derivatives`.

use rbd_bench::harness::{iso8601_utc, Bench, BenchReport, HostMeta};
use rbd_dynamics::{
    fd_derivatives, fd_derivatives_into, fd_derivatives_with_algo_into, rnea_derivatives,
    rnea_derivatives_into, rnea_derivatives_with_algo_into, BatchEval, DerivAlgo,
    DynamicsWorkspace, FdDerivatives, RneaDerivatives, SamplePoint,
};
use rbd_model::{random_state, robots};

fn main() {
    let mut report = BenchReport::default();
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    report.set_meta(HostMeta::collect(iso8601_utc(now)));

    for model in robots::paper_robots() {
        let name = model.name().to_string();
        let mut group = Bench::new(format!("derivatives/{name}"));
        let mut ws = DynamicsWorkspace::new(&model);
        let s = random_state(&model, 1);
        let nv = model.nv();
        let qdd: Vec<f64> = (0..nv).map(|k| 0.1 * k as f64 - 0.2).collect();
        let tau: Vec<f64> = (0..nv).map(|k| 0.5 - 0.05 * k as f64).collect();

        // Allocating wrappers (the seed API, for before/after trends).
        group.bench("dID_single", || {
            rnea_derivatives(&model, &mut ws, &s.q, &s.qd, &qdd, None)
        });
        group.bench("dFD_single", || {
            fd_derivatives(&model, &mut ws, &s.q, &s.qd, &tau, None).unwrap()
        });

        // Zero-allocation fast path with the default backend (outputs
        // reused across calls), plus one explicit row per ΔID backend so
        // the expansion-vs-IDSVA gap stays measured even as the default
        // moves.
        {
            let mut out = RneaDerivatives::zeros(nv);
            group.bench("dID_into", || {
                rnea_derivatives_into(&model, &mut ws, &s.q, &s.qd, &qdd, None, &mut out);
            });
            for algo in [DerivAlgo::Expansion, DerivAlgo::Idsva] {
                group.bench(&format!("dID_{algo}"), || {
                    rnea_derivatives_with_algo_into(
                        &model, &mut ws, &s.q, &s.qd, &qdd, None, algo, &mut out,
                    );
                });
            }
        }
        {
            let mut out = FdDerivatives::zeros(nv);
            group.bench("dFD_into", || {
                fd_derivatives_into(&model, &mut ws, &s.q, &s.qd, &tau, None, &mut out).unwrap();
            });
            for algo in [DerivAlgo::Expansion, DerivAlgo::Idsva] {
                group.bench(&format!("dFD_{algo}"), || {
                    fd_derivatives_with_algo_into(
                        &model, &mut ws, &s.q, &s.qd, &tau, None, algo, &mut out,
                    )
                    .unwrap();
                });
            }
        }

        // Batched throughput: 64 points through the persistent worker
        // pool at 1/2/4 executors (identical outputs by construction;
        // the 4T/1T Atlas ratio is gated ≥1.5x in CI by scaling_check on
        // the 4-vCPU runners — on smaller hosts the extra rows measure
        // oversubscription, which is still useful trajectory data).
        let points: Vec<SamplePoint> = (0..64)
            .map(|i| {
                let st = random_state(&model, i);
                (st.q, st.qd, tau.clone())
            })
            .collect();
        let mut outs = vec![FdDerivatives::zeros(nv); points.len()];
        for threads in [1, 2, 4] {
            let mut batch = BatchEval::with_threads(&model, threads);
            // Warm the pool so the rows measure steady-state dispatch.
            batch.fd_derivatives_batch(&points, &mut outs).unwrap();
            group.bench(&format!("dFD_batch64_{threads}T"), || {
                batch.fd_derivatives_batch(&points, &mut outs).unwrap();
            });
        }
        report.merge(group.finish());
    }
    report
        .write_json("BENCH_derivatives.json")
        .expect("write BENCH_derivatives.json");
}
