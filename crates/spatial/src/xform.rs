//! Plücker coordinate transforms between spatial frames.

use crate::{ForceVec, Mat3, MotionVec, Vec3};
use std::fmt;

/// A Plücker transform `^B X_A` describing frame B relative to frame A.
///
/// * `rot` is the coordinate rotation `E` (maps A-coordinates of a free
///   vector into B-coordinates);
/// * `trans` is `r`, the position of B's origin expressed in A.
///
/// The motion-vector matrix is `[E 0; -E r× E]`; the force-vector
/// (dual) matrix is `[E -E r×; 0 E]`.
///
/// The apply kernels below are straight-line unrolled multiply–add
/// chains over the flat `[f64; 6]` vector backing; the `*_batch` entry
/// points apply one transform to a contiguous run of vectors so `E` and
/// `r` stay in registers across the whole sweep.
///
/// # Example
/// ```
/// use rbd_spatial::{Xform, MotionVec, Vec3};
/// // Frame B: translated 1m along A's x axis, same orientation.
/// let x = Xform::translation(Vec3::unit_x());
/// // A pure rotation about A's z axis, seen from B, gains a linear term.
/// let v = MotionVec::new(Vec3::unit_z(), Vec3::zero());
/// let vb = x.apply_motion(&v);
/// // The body point at B's origin moves at ω × r = +ŷ.
/// assert!((vb.lin() - Vec3::new(0.0, 1.0, 0.0)).max_abs() < 1e-14);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Xform {
    /// Coordinate rotation `E` (A→B).
    pub rot: Mat3,
    /// Origin of B expressed in A coordinates.
    pub trans: Vec3,
}

impl Default for Xform {
    fn default() -> Self {
        Self::identity()
    }
}

impl Xform {
    /// Creates a transform from a coordinate rotation and a translation.
    #[inline]
    pub const fn new(rot: Mat3, trans: Vec3) -> Self {
        Self { rot, trans }
    }

    /// The identity transform.
    #[inline]
    pub const fn identity() -> Self {
        Self::new(Mat3::identity(), Vec3::zero())
    }

    /// Pure translation: B's origin at `r` (A coordinates), axes aligned.
    #[inline]
    pub fn translation(r: Vec3) -> Self {
        Self::new(Mat3::identity(), r)
    }

    /// Pure coordinate rotation about X by `theta`: B is A rotated by
    /// `+theta` about A's x axis, so `E = R_x(θ)ᵀ`.
    pub fn rot_x(theta: f64) -> Self {
        Self::new(Mat3::rotation_x(theta).transpose(), Vec3::zero())
    }

    /// Pure coordinate rotation about Y by `theta`.
    pub fn rot_y(theta: f64) -> Self {
        Self::new(Mat3::rotation_y(theta).transpose(), Vec3::zero())
    }

    /// Pure coordinate rotation about Z by `theta`.
    pub fn rot_z(theta: f64) -> Self {
        Self::new(Mat3::rotation_z(theta).transpose(), Vec3::zero())
    }

    /// Pure coordinate rotation of `theta` about an arbitrary unit `axis`.
    pub fn rot_axis(axis: Vec3, theta: f64) -> Self {
        Self::new(Mat3::rotation_axis(axis, theta).transpose(), Vec3::zero())
    }

    /// Returns a copy with the translation replaced.
    #[inline]
    pub fn with_translation(mut self, r: Vec3) -> Self {
        self.trans = r;
        self
    }

    /// Transforms a motion vector from A-coordinates to B-coordinates:
    /// `v_B = [E 0; -E r× E] v_A`.
    #[inline(always)]
    pub fn apply_motion(&self, v: &MotionVec) -> MotionVec {
        let ang = self.rot * v.ang();
        let lin = self.rot * (v.lin() - self.trans.cross(&v.ang()));
        MotionVec::new(ang, lin)
    }

    /// Transforms a motion vector from B-coordinates back to A-coordinates
    /// (the inverse of [`Self::apply_motion`]).
    #[inline(always)]
    pub fn inv_apply_motion(&self, v: &MotionVec) -> MotionVec {
        let ang = self.rot.tr_mul_vec(&v.ang());
        let lin = self.rot.tr_mul_vec(&v.lin()) + self.trans.cross(&ang);
        MotionVec::new(ang, lin)
    }

    /// Transforms a force vector from A-coordinates to B-coordinates:
    /// `f_B = [E -E r×; 0 E] f_A`.
    #[inline(always)]
    pub fn apply_force(&self, f: &ForceVec) -> ForceVec {
        let lin = self.rot * f.lin();
        let ang = self.rot * (f.ang() - self.trans.cross(&f.lin()));
        ForceVec::new(ang, lin)
    }

    /// Transforms a force vector from B-coordinates back to A-coordinates
    /// (`^A X_B^* f`, the adjoint used by the RNEA backward pass).
    #[inline(always)]
    pub fn inv_apply_force(&self, f: &ForceVec) -> ForceVec {
        let lin = self.rot.tr_mul_vec(&f.lin());
        let ang = self.rot.tr_mul_vec(&f.ang()) + self.trans.cross(&lin);
        ForceVec::new(ang, lin)
    }

    /// Batched [`Self::apply_motion`]: `dst[k] = X · src[k]` over a
    /// contiguous run of motion vectors.
    ///
    /// # Panics
    /// Panics if `dst.len() != src.len()`.
    #[inline]
    pub fn apply_motion_batch(&self, src: &[MotionVec], dst: &mut [MotionVec]) {
        assert_eq!(src.len(), dst.len(), "apply_motion_batch length");
        for (d, s) in dst.iter_mut().zip(src) {
            *d = self.apply_motion(s);
        }
    }

    /// Batched [`Self::inv_apply_motion`]: `dst[k] = X⁻¹ · src[k]` (e.g.
    /// lifting all motion-subspace columns of a joint into world
    /// coordinates in one sweep).
    ///
    /// # Panics
    /// Panics if `dst.len() != src.len()`.
    #[inline]
    pub fn inv_apply_motion_batch(&self, src: &[MotionVec], dst: &mut [MotionVec]) {
        assert_eq!(src.len(), dst.len(), "inv_apply_motion_batch length");
        for (d, s) in dst.iter_mut().zip(src) {
            *d = self.inv_apply_motion(s);
        }
    }

    /// In-place batched [`Self::inv_apply_force`]: `fs[k] = X* · fs[k]`
    /// (the CRBA ancestor walk shifting a joint's force columns one link
    /// up the chain).
    #[inline]
    pub fn inv_apply_force_batch_in_place(&self, fs: &mut [ForceVec]) {
        for f in fs.iter_mut() {
            *f = self.inv_apply_force(f);
        }
    }

    /// Batched accumulating [`Self::inv_apply_force`] over an index set:
    /// `dst[j] += X* · src[j]` for every `j` in `idx` — the
    /// child-to-parent force-table propagation of the MMinvGen backward
    /// sweep, with `E` and `r` hoisted out of the column loop.
    ///
    /// # Panics
    /// Panics if an index is out of bounds for `src` or `dst`.
    #[inline]
    pub fn inv_apply_force_accum(
        &self,
        src: &[ForceVec],
        dst: &mut [ForceVec],
        idx: impl IntoIterator<Item = usize>,
    ) {
        for j in idx {
            dst[j] += self.inv_apply_force(&src[j]);
        }
    }

    /// Composition: if `self = ^C X_B` and `rhs = ^B X_A`, returns `^C X_A`.
    #[inline]
    pub fn compose(&self, rhs: &Xform) -> Xform {
        Xform::new(
            self.rot * rhs.rot,
            rhs.trans + rhs.rot.tr_mul_vec(&self.trans),
        )
    }

    /// The inverse transform `^A X_B`.
    #[inline]
    pub fn inverse(&self) -> Xform {
        Xform::new(self.rot.transpose(), -(self.rot * self.trans))
    }

    /// The position of A's origin expressed in B coordinates.
    #[inline]
    pub fn origin_in_b(&self) -> Vec3 {
        -(self.rot * self.trans)
    }
}

impl fmt::Display for Xform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Xform(E={} r={})", self.rot, self.trans)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arbitrary_xform() -> Xform {
        Xform::rot_axis(Vec3::new(0.3, -0.5, 0.8).normalized(), 1.234)
            .with_translation(Vec3::new(0.7, -0.2, 1.5))
    }

    #[test]
    fn motion_roundtrip() {
        let x = arbitrary_xform();
        let v = MotionVec::from_slice(&[0.1, 0.2, -0.3, 1.0, -2.0, 0.5]);
        let back = x.inv_apply_motion(&x.apply_motion(&v));
        assert!((back - v).max_abs() < 1e-12);
    }

    #[test]
    fn force_roundtrip() {
        let x = arbitrary_xform();
        let f = ForceVec::from_slice(&[2.0, -0.1, 0.4, 0.3, 0.9, -1.2]);
        let back = x.inv_apply_force(&x.apply_force(&f));
        assert!((back - f).max_abs() < 1e-12);
    }

    #[test]
    fn duality_pairing_is_invariant() {
        // ⟨Xv, X*f⟩ = ⟨v, f⟩ — power does not depend on the frame.
        let x = arbitrary_xform();
        let v = MotionVec::from_slice(&[0.1, 0.2, -0.3, 1.0, -2.0, 0.5]);
        let f = ForceVec::from_slice(&[2.0, -0.1, 0.4, 0.3, 0.9, -1.2]);
        let lhs = x.apply_motion(&v).dot_force(&x.apply_force(&f));
        assert!((lhs - v.dot_force(&f)).abs() < 1e-12);
    }

    #[test]
    fn compose_matches_sequential_application() {
        let bxa = arbitrary_xform();
        let cxb = Xform::rot_y(0.4).with_translation(Vec3::new(-0.3, 0.0, 0.2));
        let cxa = cxb.compose(&bxa);
        let v = MotionVec::from_slice(&[0.5, -0.5, 0.25, 0.0, 1.0, 2.0]);
        let lhs = cxa.apply_motion(&v);
        let rhs = cxb.apply_motion(&bxa.apply_motion(&v));
        assert!((lhs - rhs).max_abs() < 1e-12);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let x = arbitrary_xform();
        let id = x.compose(&x.inverse());
        assert!((id.rot - Mat3::identity()).max_abs() < 1e-12);
        assert!(id.trans.max_abs() < 1e-12);
    }

    #[test]
    fn cross_commutes_with_transform() {
        // X (a × b) = (X a) × (X b) — the cross product is equivariant.
        let x = arbitrary_xform();
        let a = MotionVec::from_slice(&[0.3, 0.1, -0.4, 0.2, 0.6, -0.1]);
        let b = MotionVec::from_slice(&[-0.2, 0.5, 0.7, 1.1, 0.0, 0.9]);
        let lhs = x.apply_motion(&a.cross_motion(&b));
        let rhs = x.apply_motion(&a).cross_motion(&x.apply_motion(&b));
        assert!((lhs - rhs).max_abs() < 1e-12);
    }

    #[test]
    fn translation_only_shifts_linear_velocity() {
        let x = Xform::translation(Vec3::new(0.0, 0.0, 2.0));
        let v = MotionVec::new(Vec3::unit_x(), Vec3::zero());
        let vb = x.apply_motion(&v);
        // The body point at +2z under ω = x̂ moves at ω × r = -2ŷ.
        assert!((vb.lin() - Vec3::new(0.0, -2.0, 0.0)).max_abs() < 1e-14);
        assert!((vb.ang() - Vec3::unit_x()).max_abs() < 1e-14);
    }

    #[test]
    fn batch_entry_points_match_scalar_kernels() {
        let x = arbitrary_xform();
        let ms: Vec<MotionVec> = (0..7)
            .map(|k| MotionVec::from_slice(&[0.1 * k as f64, 0.2, -0.3, 1.0 - k as f64, 0.5, 0.4]))
            .collect();
        let fs: Vec<ForceVec> = (0..7)
            .map(|k| ForceVec::from_slice(&[0.3, -0.1 * k as f64, 0.4, 0.9, 0.8, 0.2]))
            .collect();

        let mut out = vec![MotionVec::zero(); 7];
        x.apply_motion_batch(&ms, &mut out);
        for (s, d) in ms.iter().zip(&out) {
            assert_eq!(d.to_array(), x.apply_motion(s).to_array());
        }
        x.inv_apply_motion_batch(&ms, &mut out);
        for (s, d) in ms.iter().zip(&out) {
            assert_eq!(d.to_array(), x.inv_apply_motion(s).to_array());
        }

        let mut fs2 = fs.clone();
        x.inv_apply_force_batch_in_place(&mut fs2);
        for (s, d) in fs.iter().zip(&fs2) {
            assert_eq!(d.to_array(), x.inv_apply_force(s).to_array());
        }

        let mut acc = fs.clone();
        x.inv_apply_force_accum(&fs, &mut acc, [1usize, 3, 5]);
        for (j, (s, d)) in fs.iter().zip(&acc).enumerate() {
            let expect = if j % 2 == 1 {
                *s + x.inv_apply_force(s)
            } else {
                *s
            };
            assert_eq!(d.to_array(), expect.to_array());
        }
    }
}
