//! Structure-Adaptive Pipelines on a humanoid: how re-rooting Atlas at
//! the torso (§V-C1, Fig 11c) balances the tree, shortens the pipeline
//! and cuts resources — and that the dynamics results are unaffected by
//! the hardware organisation.
//!
//! ```text
//! cargo run --example humanoid_rerooting --release
//! ```

use dadu_rbd::accel::{AccelConfig, DaduRbd, FunctionKind};
use dadu_rbd::model::{random_state, robots};

fn main() {
    let model = robots::atlas();
    println!("model: {model}");

    let plain = DaduRbd::configure(
        &model,
        AccelConfig {
            auto_reroot: false,
            ..AccelConfig::default()
        },
    );
    let rerooted = DaduRbd::configure(&model, AccelConfig::default());

    for (name, accel) in [("pelvis root", &plain), ("torso re-rooted", &rerooted)] {
        let layout = accel.layout();
        let u = accel.resource_usage();
        let t = accel.estimate(FunctionKind::DFd, 256);
        println!(
            "\n[{name}] root = {}, depth = {}, hw stages = {}",
            model.body_name(layout.root_body),
            layout.max_depth,
            layout.hw_stage_count()
        );
        for b in &layout.branches {
            let names: Vec<&str> = b.bodies.iter().map(|&i| model.body_name(i)).collect();
            println!("   branch (x{}): {}", b.multiplex, names.join(" → "));
        }
        println!(
            "   resources: {u}\n   ΔFD: latency {:.2} µs, throughput {:.2} M/s",
            t.latency_s * 1e6,
            t.throughput_tasks_per_s / 1e6
        );
    }

    // The hardware organisation never changes the numbers: both
    // configurations compute identical torques.
    let s = random_state(&model, 3);
    let qdd = vec![0.1; model.nv()];
    let a = plain.run_id(&s.q, &s.qd, &qdd, None);
    let b = rerooted.run_id(&s.q, &s.qd, &qdd, None);
    let max_diff = a
        .tau
        .iter()
        .zip(&b.tau)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0_f64, f64::max);
    println!("\nfunctional equivalence: max |Δτ| between organisations = {max_diff:.2e}");
}
