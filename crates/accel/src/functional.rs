//! Functional (bit-true at f64 granularity) model of the multifunctional
//! dataflow: the Forward-Backward module is executed as explicit
//! per-joint submodule activations exchanging `ftr`/`dtr`/`btr` messages
//! through FIFO slots (Figs 6, 7, 9), including the paper's
//! *re-updated transformation matrices* (§IV-A2: `Rb`/`Db` recompute `X`
//! from the shared trigonometric outputs instead of receiving it) and
//! *lazy updates* (§IV-A3: children's contributions are applied at the
//! parent's activation).
//!
//! The Backward-Forward module runs the MMinvGen reference kernel
//! ([`rbd_dynamics::mminv_gen`]), which is already organised as the
//! per-joint `Mb` (backward) / `Mf` (forward) sweeps of Fig 8.
//!
//! Integration tests assert every function's output equals the
//! `rbd-dynamics` reference.

use crate::dataflow::{FunctionKind, FunctionOutput};
use rbd_dynamics::{mminv_gen, DynamicsWorkspace};
use rbd_model::{JointType, RobotModel};
use rbd_spatial::{ForceVec, Mat3, MatN, MotionVec, SpatialInertia, VecN, Xform};

/// Output of the Global Trigonometric Module for one joint: the
/// `(sin, cos)` pairs its transform needs (empty for trig-free joints).
#[derive(Debug, Clone, Default)]
struct TrigOut {
    sc: Vec<(f64, f64)>,
}

/// Forward-transfer message `ftr_i = {v_i, a_i}` (Fig 6).
#[derive(Debug, Clone, Copy, Default)]
struct Ftr {
    v: MotionVec,
    a: MotionVec,
}

/// Downward-transfer message `dtr_i` from `Rf_i` to `Rb_i` — carries the
/// *inputs* needed to re-update `X_i` plus the body force and `[v, a]`.
#[derive(Debug, Clone, Default)]
struct Dtr {
    f: ForceVec,
    v: MotionVec,
    a: MotionVec,
}

/// The functional engine for one model.
#[derive(Debug)]
pub struct FunctionalEngine<'m> {
    model: &'m RobotModel,
    taylor_trig: bool,
}

impl<'m> FunctionalEngine<'m> {
    /// Creates an engine; with `taylor_trig` the Global Trigonometric
    /// Module evaluates the 7-term Taylor pipeline instead of libm.
    pub fn new(model: &'m RobotModel, taylor_trig: bool) -> Self {
        Self { model, taylor_trig }
    }

    /// Runs one function. `u` is `q̈` for ID/ΔID/ΔiFD and `τ` for
    /// FD/ΔFD (ignored for M/Minv); `minv_in` feeds ΔiFD.
    ///
    /// # Panics
    /// Panics on dimension mismatches or a missing `minv_in` for ΔiFD.
    pub fn run(
        &self,
        f: FunctionKind,
        q: &[f64],
        qd: &[f64],
        u: &[f64],
        minv_in: Option<&MatN>,
        fext: Option<&[ForceVec]>,
    ) -> FunctionOutput {
        let nv = self.model.nv();
        assert_eq!(q.len(), self.model.nq());
        assert_eq!(qd.len(), nv);
        assert_eq!(u.len(), nv);
        let mut out = FunctionOutput::default();
        match f {
            FunctionKind::Id => {
                let (tau, _) = self.fb_rnea(q, qd, u, fext);
                out.tau = tau;
            }
            FunctionKind::MassMatrix => {
                out.m = self.bf(q, true, false).0;
            }
            FunctionKind::MassMatrixInverse => {
                out.minv = self.bf(q, false, true).1;
            }
            FunctionKind::Fd => {
                // ① C = RNEA(q, q̇, 0)   ② M⁻¹ = MMinvGen   ③ q̈ = M⁻¹(τ-C)
                let zero = vec![0.0; nv];
                let (c, _) = self.fb_rnea(q, qd, &zero, fext);
                let minv = self.bf(q, false, true).1.unwrap();
                out.qdd = sched_matvec(&minv, u, &c);
                out.minv = Some(minv);
            }
            FunctionKind::DId => {
                let (tau, state) = self.fb_rnea(q, qd, u, fext);
                let (dq, dqd) = self.fb_delta(q, qd, u, &state, fext);
                out.tau = tau;
                out.dtau = Some((dq, dqd));
            }
            FunctionKind::DiFd => {
                let minv = minv_in.expect("ΔiFD requires M⁻¹ input").clone();
                let (_, state) = self.fb_rnea(q, qd, u, fext);
                let (dq, dqd) = self.fb_delta(q, qd, u, &state, fext);
                out.dqdd = Some((neg_mul(&minv, &dq), neg_mul(&minv, &dqd)));
                out.minv = Some(minv);
            }
            FunctionKind::DFd => {
                // Stage 1: FD (steps ①-③ of Fig 9a).
                let zero = vec![0.0; nv];
                let (c, _) = self.fb_rnea(q, qd, &zero, fext);
                let minv = self.bf(q, false, true).1.unwrap();
                let qdd = sched_matvec(&minv, u, &c);
                // Stage 2 (feedback): ④ RNEA at q̈, ⑤ ΔRNEA.
                let (_, state) = self.fb_rnea(q, qd, &qdd, fext);
                let (dq, dqd) = self.fb_delta(q, qd, &qdd, &state, fext);
                // Stage 3: ⑥ ∂q̈ = -M⁻¹ ∂τ.
                out.dqdd = Some((neg_mul(&minv, &dq), neg_mul(&minv, &dqd)));
                out.qdd = qdd;
                out.minv = Some(minv);
            }
        }
        out
    }

    // -----------------------------------------------------------------
    // Global Trigonometric Module
    // -----------------------------------------------------------------
    fn trig(&self, q: &[f64]) -> Vec<TrigOut> {
        let eval = |x: f64| {
            if self.taylor_trig {
                rbd_fixed::trig::sin_cos(x)
            } else {
                x.sin_cos()
            }
        };
        (0..self.model.num_bodies())
            .map(|i| {
                let qi = self.model.q_slice(i, q);
                let sc = match self.model.joint(i).jtype {
                    JointType::Revolute(_) => vec![eval(qi[0])],
                    JointType::Planar => vec![eval(qi[2])],
                    _ => Vec::new(),
                };
                TrigOut { sc }
            })
            .collect()
    }

    /// Re-updates `X_i` from the trig outputs (the `Rb`/`Db` submodules
    /// recompute this rather than buffering the matrix, §IV-A2).
    fn build_xup(&self, i: usize, q: &[f64], trig: &[TrigOut]) -> Xform {
        let joint = self.model.joint(i);
        let qi = self.model.q_slice(i, q);
        match joint.jtype {
            JointType::Revolute(axis) => {
                let (s, c) = trig[i].sc[0];
                Xform::new(
                    Mat3::rotation_axis_sc(axis, s, c).transpose(),
                    rbd_spatial::Vec3::zero(),
                )
                .compose(&joint.placement)
            }
            JointType::Planar => {
                let (s, c) = trig[i].sc[0];
                let e = Mat3::from_rows([[c, s, 0.0], [-s, c, 0.0], [0.0, 0.0, 1.0]]);
                Xform::new(e, rbd_spatial::Vec3::new(qi[0], qi[1], 0.0)).compose(&joint.placement)
            }
            _ => joint.child_xform(qi),
        }
    }

    // -----------------------------------------------------------------
    // Forward-Backward module, RNEA mode (Rf_i → … → Rb_i, Fig 6)
    // -----------------------------------------------------------------

    /// Runs the RNEA round-trip pipeline. Returns `τ` and the retained
    /// `[v, a, f, X]` state that the Dynamics Array forwards to the
    /// ΔRNEA submodules (Fig 9b).
    fn fb_rnea(
        &self,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
        fext: Option<&[ForceVec]>,
    ) -> (Vec<f64>, RneaState) {
        let nb = self.model.num_bodies();
        let trig = self.trig(q);
        let a0 = MotionVec::new(rbd_spatial::Vec3::zero(), -self.model.gravity);

        // FIFO slots.
        let mut ftr: Vec<Ftr> = vec![Ftr::default(); nb];
        let mut dtr: Vec<Dtr> = vec![Dtr::default(); nb];
        let mut xup: Vec<Xform> = vec![Xform::identity(); nb];
        let mut xworld: Vec<Xform> = vec![Xform::identity(); nb];

        // Forward stream: Rf submodules in topological order. Broadcast
        // to branches is implicit: every child reads its parent's ftr.
        for i in 0..nb {
            let x = self.build_xup(i, q, &trig);
            let parent = self.model.topology().parent(i);
            xworld[i] = match parent {
                Some(p) => x.compose(&xworld[p]),
                None => x,
            };
            let vo = self.model.v_offset(i);
            let cols = self.model.joint(i).jtype.motion_subspace();
            let mut vj = MotionVec::zero();
            let mut aj = MotionVec::zero();
            for (k, s) in cols.iter().enumerate() {
                vj += *s * qd[vo + k];
                aj += *s * qdd[vo + k];
            }
            let (vp, ap) = match parent {
                Some(p) => (x.apply_motion(&ftr[p].v), x.apply_motion(&ftr[p].a)),
                None => (MotionVec::zero(), x.apply_motion(&a0)),
            };
            let v = vp + vj;
            let a = ap + aj + v.cross_motion(&vj);
            let inertia = self.model.link_inertia(i);
            let mut fb = inertia.mul_motion(&a) + v.cross_force(&inertia.mul_motion(&v));
            if let Some(fx) = fext {
                fb -= xworld[i].apply_force(&fx[i]);
            }
            ftr[i] = Ftr { v, a };
            dtr[i] = Dtr { f: fb, v, a };
            xup[i] = x;
        }

        // Backward stream: Rb submodules in reverse order; the btr of
        // each child is lazily added at the parent's activation
        // (§IV-A3), children on different branches reduce by summation.
        let mut btr_acc: Vec<ForceVec> = vec![ForceVec::zero(); nb];
        let mut tau = vec![0.0; self.model.nv()];
        for i in (0..nb).rev() {
            // Re-update X (recompute, do not transfer).
            let x = self.build_xup(i, q, &trig);
            let f = dtr[i].f + btr_acc[i];
            let vo = self.model.v_offset(i);
            for (k, s) in self
                .model
                .joint(i)
                .jtype
                .motion_subspace()
                .iter()
                .enumerate()
            {
                tau[vo + k] = s.dot_force(&f);
            }
            if let Some(p) = self.model.topology().parent(i) {
                btr_acc[p] += x.inv_apply_force(&f);
            }
        }

        (
            tau,
            RneaState {
                xworld,
                v: dtr.iter().map(|d| d.v).collect(),
                a: dtr.iter().map(|d| d.a).collect(),
                // Per-body (un-aggregated) forces; the Db stream performs
                // its own lazy aggregation.
                f: dtr.iter().map(|d| d.f).collect(),
            },
        )
    }

    // -----------------------------------------------------------------
    // Forward-Backward module, ΔRNEA mode (Df_i / Db_i, Fig 7)
    // -----------------------------------------------------------------

    /// Runs the ΔRNEA array over the retained RNEA state. Columns are
    /// world-frame incremental column vectors (§IV-A4): submodule `Df_i`
    /// extends its parent's column set by its own DOFs.
    fn fb_delta(
        &self,
        q: &[f64],
        qd: &[f64],
        qdd: &[f64],
        state: &RneaState,
        _fext: Option<&[ForceVec]>,
    ) -> (MatN, MatN) {
        let model = self.model;
        let nb = model.num_bodies();
        let nv = model.nv();

        // World-frame S columns and per-body world kinematics.
        let mut s_world = vec![MotionVec::zero(); nv];
        let mut v_w = vec![MotionVec::zero(); nb];
        let mut a_w = vec![MotionVec::zero(); nb];
        let mut vj_w = vec![MotionVec::zero(); nb];
        let mut aj_w = vec![MotionVec::zero(); nb];
        let mut iw: Vec<SpatialInertia> = Vec::with_capacity(nb);
        let a0 = MotionVec::new(rbd_spatial::Vec3::zero(), -model.gravity);
        let _ = q;
        for i in 0..nb {
            let x0 = state.xworld[i];
            let vo = model.v_offset(i);
            let cols = model.joint(i).jtype.motion_subspace();
            let mut vj = MotionVec::zero();
            let mut aj = MotionVec::zero();
            for (k, s) in cols.iter().enumerate() {
                let sw = x0.inv_apply_motion(s);
                s_world[vo + k] = sw;
                vj += sw * qd[vo + k];
                aj += sw * qdd[vo + k];
            }
            vj_w[i] = vj;
            aj_w[i] = aj;
            let (vp, ap) = match model.topology().parent(i) {
                Some(p) => (v_w[p], a_w[p]),
                None => (MotionVec::zero(), a0),
            };
            v_w[i] = vp + vj;
            a_w[i] = ap + aj + v_w[i].cross_motion(&vj);
            iw.push(model.link_inertia(i).transform_to_parent(&x0));
        }

        let d_i_apply = |sj: &MotionVec, inertia: &SpatialInertia, y: &MotionVec| -> ForceVec {
            sj.cross_force(&inertia.mul_motion(y)) - inertia.mul_motion(&sj.cross_motion(y))
        };

        // Df forward stream: each submodule consumes the parent's column
        // block (ftr) and emits its own, incrementally adding columns.
        let mut dv_q = vec![vec![MotionVec::zero(); nv]; nb];
        let mut dv_qd = vec![vec![MotionVec::zero(); nv]; nb];
        let mut da_q = vec![vec![MotionVec::zero(); nv]; nb];
        let mut da_qd = vec![vec![MotionVec::zero(); nv]; nb];
        let mut df_q = vec![vec![ForceVec::zero(); nv]; nb];
        let mut df_qd = vec![vec![ForceVec::zero(); nv]; nb];
        let mut chain: Vec<Vec<usize>> = Vec::with_capacity(nb);
        for i in 0..nb {
            let parent = model.topology().parent(i);
            let vo = model.v_offset(i);
            let ni = model.joint(i).jtype.nv();
            let mut ch = match parent {
                Some(p) => chain[p].clone(),
                None => Vec::new(),
            };
            ch.extend(vo..vo + ni);
            for &j in &ch {
                let sj = s_world[j];
                let own = j >= vo && j < vo + ni;
                let pv = parent.map(|p| dv_q[p][j]).unwrap_or_default();
                let pvd = parent.map(|p| dv_qd[p][j]).unwrap_or_default();
                let pa = parent.map(|p| da_q[p][j]).unwrap_or_default();
                let pad = parent.map(|p| da_qd[p][j]).unwrap_or_default();

                let dvq = pv + sj.cross_motion(&vj_w[i]);
                let dvqd = pvd + if own { sj } else { MotionVec::zero() };
                let daq = pa
                    + sj.cross_motion(&aj_w[i])
                    + dvq.cross_motion(&vj_w[i])
                    + v_w[i].cross_motion(&sj.cross_motion(&vj_w[i]));
                let daqd = pad
                    + dvqd.cross_motion(&vj_w[i])
                    + if own {
                        v_w[i].cross_motion(&sj)
                    } else {
                        MotionVec::zero()
                    };

                dv_q[i][j] = dvq;
                dv_qd[i][j] = dvqd;
                da_q[i][j] = daq;
                da_qd[i][j] = daqd;

                df_q[i][j] = d_i_apply(&sj, &iw[i], &a_w[i])
                    + iw[i].mul_motion(&daq)
                    + dvq.cross_force(&iw[i].mul_motion(&v_w[i]))
                    + v_w[i]
                        .cross_force(&(d_i_apply(&sj, &iw[i], &v_w[i]) + iw[i].mul_motion(&dvq)));
                df_qd[i][j] = iw[i].mul_motion(&daqd)
                    + dvqd.cross_force(&iw[i].mul_motion(&v_w[i]))
                    + v_w[i].cross_force(&iw[i].mul_motion(&dvqd));
            }
            chain.push(ch);
        }

        // Db backward stream: aggregate ∂f lazily at parents, emit ∂τ.
        let mut f_agg: Vec<ForceVec> = state.f.clone();
        // Convert the retained local-frame f to world frame for the
        // geometric term (the Dynamics Array keeps both views).
        for i in 0..nb {
            f_agg[i] = state.xworld[i].inv_apply_force(&state.f[i]);
        }
        let mut dtau_q = MatN::zeros(nv, nv);
        let mut dtau_qd = MatN::zeros(nv, nv);
        for i in (0..nb).rev() {
            let vo = model.v_offset(i);
            let ni = model.joint(i).jtype.nv();
            for k in 0..ni {
                let sk = s_world[vo + k];
                for j in 0..nv {
                    let mut dq = sk.dot_force(&df_q[i][j]);
                    let body_j = model.body_of_dof(j);
                    if model.topology().is_ancestor_or_self(body_j, i) {
                        dq += s_world[j].cross_motion(&sk).dot_force(&f_agg[i]);
                    }
                    dtau_q[(vo + k, j)] += dq;
                    dtau_qd[(vo + k, j)] += sk.dot_force(&df_qd[i][j]);
                }
            }
            if let Some(p) = model.topology().parent(i) {
                let fa = f_agg[i];
                f_agg[p] += fa;
                for j in 0..nv {
                    let (a, b) = (df_q[i][j], df_qd[i][j]);
                    df_q[p][j] += a;
                    df_qd[p][j] += b;
                }
            }
        }
        (dtau_q, dtau_qd)
    }

    // -----------------------------------------------------------------
    // Backward-Forward module (Mb_i / Mf_i, Fig 8): Algorithm 2 executed
    // as explicit per-joint stages. Each `Mb_i` activation consumes the
    // lazily accumulated `btr` messages of its children (`λX*F` columns
    // and the shifted articulated inertia), emits its `M`/`M⁻¹` rows and
    // its own `btr`; each `Mf_i` consumes the parent's `ftr` (`P`
    // columns), corrects the trailing `M⁻¹` entries and forwards `P`.
    // -----------------------------------------------------------------
    fn bf(&self, q: &[f64], out_m: bool, out_minv: bool) -> (Option<MatN>, Option<MatN>) {
        let model = self.model;
        let nb = model.num_bodies();
        let nv = model.nv();
        let trig = self.trig(q);

        let mut m_mat = if out_m {
            Some(MatN::zeros(nv, nv))
        } else {
            None
        };
        let mut minv = if out_minv {
            Some(MatN::zeros(nv, nv))
        } else {
            None
        };

        // btr accumulation slots at each body (lazy update, §IV-A3).
        let mut ia_acc: Vec<rbd_spatial::Mat6> = vec![rbd_spatial::Mat6::zero(); nb];
        let mut f_minv: Vec<Vec<ForceVec>> = vec![vec![ForceVec::zero(); nv]; nb];
        let mut f_m: Vec<Vec<ForceVec>> = vec![vec![ForceVec::zero(); nv]; nb];
        // dtr slots: factors the forward stream needs.
        let mut u_cols: Vec<Vec<ForceVec>> = vec![Vec::new(); nb];
        let mut d_inv: Vec<MatN> = vec![MatN::zeros(0, 0); nb];
        let mut xups: Vec<Xform> = vec![Xform::identity(); nb];

        // ---------------- Mb backward stream (leaves → root).
        for i in (0..nb).rev() {
            let xup = self.build_xup(i, q, &trig); // re-updated, not buffered
            let cols = model.joint(i).jtype.motion_subspace();
            let ni = cols.len();
            let bi = model.v_offset(i);

            // IA_i += I_i (children already folded their btr in).
            let ia_art = ia_acc[i] + model.link_inertia(i).to_mat6();
            let u: Vec<ForceVec> = cols.iter().map(|s| ia_art.mul_motion_to_force(s)).collect();
            let mut d = MatN::zeros(ni, ni);
            for a in 0..ni {
                for b in 0..ni {
                    d[(a, b)] = cols[a].dot_force(&u[b]);
                }
            }
            // D⁻¹ through the reciprocal unit's semantics (§IV-B2).
            let dinv = d.inverse_spd().expect("BF module: singular D");

            let subtree = model.topology().subtree(i);
            let desc_dofs: Vec<usize> = subtree
                .iter()
                .filter(|&&b| b != i)
                .flat_map(|&b| {
                    let o = model.v_offset(b);
                    o..o + model.joint(b).jtype.nv()
                })
                .collect();

            if let Some(minv) = minv.as_mut() {
                for a in 0..ni {
                    for b in 0..ni {
                        minv[(bi + a, bi + b)] = dinv[(a, b)];
                    }
                }
                for &j in &desc_dofs {
                    for a in 0..ni {
                        let mut acc = 0.0;
                        for b in 0..ni {
                            acc += dinv[(a, b)] * cols[b].dot_force(&f_minv[i][j]);
                        }
                        minv[(bi + a, j)] = -acc;
                    }
                }
            }
            // Composite-inertia path for M (no articulated decrement):
            // maintained implicitly by re-deriving U from the composite
            // accumulator below.
            if let Some(p) = model.topology().parent(i) {
                let own_and_desc: Vec<usize> =
                    (bi..bi + ni).chain(desc_dofs.iter().copied()).collect();
                let mut ia_out = ia_art;
                if let Some(minv) = minv.as_ref() {
                    // F += U Minv[i, tree(i)] ; IA -= U D⁻¹ Uᵀ.
                    for &j in &own_and_desc {
                        for a in 0..ni {
                            f_minv[i][j] += u[a] * minv[(bi + a, j)];
                        }
                    }
                    ia_out.sub_outer_weighted(&u[..ni], |a, b| dinv[(a, b)]);
                }
                // btr: transformed F columns + shifted IA, lazily folded
                // into the parent's slots.
                for &j in &own_and_desc {
                    if minv.is_some() {
                        let shifted = xup.inv_apply_force(&f_minv[i][j]);
                        f_minv[p][j] += shifted;
                    }
                }
                let x6 = rbd_spatial::Mat6::from_xform_motion(&xup);
                if minv.is_some() {
                    ia_acc[p] += ia_out.congruence(&x6);
                }
                // M path uses its own composite accumulation through f_m
                // (handled below when out_m).
                if m_mat.is_some() && minv.is_none() {
                    ia_acc[p] += ia_art.congruence(&x6);
                }
            }

            // M rows need the *composite* U; recompute from a composite
            // accumulator when both outputs are requested.
            if let Some(m) = m_mat.as_mut() {
                // For the M path, f_m carries composite force columns.
                let ia_comp = if minv.is_some() {
                    // Rebuild the composite inertia: articulated + the
                    // rank-ni terms removed so far equals composite only
                    // in single-output mode; in dual mode recompute from
                    // children’s composite columns directly.
                    None
                } else {
                    Some(ia_art)
                };
                let u_m: Vec<ForceVec> = match ia_comp {
                    Some(ia) => cols.iter().map(|s| ia.mul_motion_to_force(s)).collect(),
                    None => {
                        // Dual mode: fall back to the reference kernel for
                        // the composite path (the hardware never runs
                        // both modes in one task).
                        let mut ws = DynamicsWorkspace::new(model);
                        let out =
                            mminv_gen(model, &mut ws, q, true, false).expect("BF module M path");
                        *m = out.m.unwrap();
                        u_cols[i] = u;
                        d_inv[i] = dinv;
                        xups[i] = xup;
                        continue;
                    }
                };
                for a in 0..ni {
                    for b in 0..ni {
                        m[(bi + a, bi + b)] = cols[a].dot_force(&u_m[b]);
                    }
                }
                for &j in &desc_dofs {
                    for a in 0..ni {
                        m[(bi + a, j)] = cols[a].dot_force(&f_m[i][j]);
                    }
                }
                if let Some(p) = model.topology().parent(i) {
                    f_m[i][bi..bi + ni].copy_from_slice(&u_m[..ni]);
                    let all: Vec<usize> = (bi..bi + ni).chain(desc_dofs.iter().copied()).collect();
                    for &j in &all {
                        let shifted = xup.inv_apply_force(&f_m[i][j]);
                        f_m[p][j] += shifted;
                    }
                }
            }

            u_cols[i] = u;
            d_inv[i] = dinv;
            xups[i] = xup;
        }

        // ---------------- Mf forward stream (root → leaves), Minv only.
        if let Some(minv) = minv.as_mut() {
            let mut p_cols: Vec<Vec<MotionVec>> = vec![vec![MotionVec::zero(); nv]; nb];
            for i in 0..nb {
                let bi = model.v_offset(i);
                let cols = model.joint(i).jtype.motion_subspace();
                let ni = cols.len();
                let parent = model.topology().parent(i);
                for j in bi..nv {
                    let ftr = parent.map(|p| xups[i].apply_motion(&p_cols[p][j]));
                    if let Some(tp) = ftr {
                        for a in 0..ni {
                            let mut acc = 0.0;
                            for b in 0..ni {
                                acc += d_inv[i][(a, b)] * u_cols[i][b].dot_motion(&tp);
                            }
                            minv[(bi + a, j)] -= acc;
                        }
                    }
                    let mut pcol = MotionVec::zero();
                    for (a, s) in cols.iter().enumerate() {
                        pcol += *s * minv[(bi + a, j)];
                    }
                    if let Some(tp) = ftr {
                        pcol += tp;
                    }
                    p_cols[i][j] = pcol;
                }
            }
            minv.symmetrize_from_upper();
        }
        if let Some(m) = m_mat.as_mut() {
            m.symmetrize_from_upper();
        }
        (m_mat, minv)
    }
}

/// Retained per-body RNEA state (the `[v, a, f]` by-products of Table I
/// plus the world transforms the array shares).
#[derive(Debug, Clone)]
struct RneaState {
    xworld: Vec<Xform>,
    #[allow(dead_code)]
    v: Vec<MotionVec>,
    #[allow(dead_code)]
    a: Vec<MotionVec>,
    f: Vec<ForceVec>,
}

/// Schedule-module product `M⁻¹ (τ - C)` (Fig 9c's `A(x-y)` unit).
fn sched_matvec(minv: &MatN, tau: &[f64], c: &[f64]) -> Vec<f64> {
    let rhs = VecN::from_vec(tau.iter().zip(c).map(|(t, c)| t - c).collect());
    minv.mul_vec(&rhs).as_slice().to_vec()
}

/// `-A·B` for the ⑥ step.
fn neg_mul(a: &MatN, b: &MatN) -> MatN {
    let mut out = a.mul_mat(b);
    for i in 0..out.rows() {
        for j in 0..out.cols() {
            out[(i, j)] = -out[(i, j)];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_dynamics::{
        fd_derivatives, forward_dynamics, rnea, rnea_derivatives, DynamicsWorkspace,
    };
    use rbd_model::{random_state, robots};

    fn models() -> Vec<RobotModel> {
        vec![robots::iiwa(), robots::hyq(), robots::atlas()]
    }

    use rbd_model::RobotModel;

    #[test]
    fn id_matches_reference() {
        for m in models() {
            let eng = FunctionalEngine::new(&m, false);
            let s = random_state(&m, 1);
            let qdd: Vec<f64> = (0..m.nv()).map(|k| 0.3 - 0.02 * k as f64).collect();
            let out = eng.run(FunctionKind::Id, &s.q, &s.qd, &qdd, None, None);
            let mut ws = DynamicsWorkspace::new(&m);
            let expect = rnea(&m, &mut ws, &s.q, &s.qd, &qdd, None);
            for k in 0..m.nv() {
                assert!(
                    (out.tau[k] - expect[k]).abs() < 1e-9 * (1.0 + expect[k].abs()),
                    "{} dof {k}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn fd_matches_reference() {
        for m in models() {
            let eng = FunctionalEngine::new(&m, false);
            let s = random_state(&m, 2);
            let tau: Vec<f64> = (0..m.nv()).map(|k| 0.5 * k as f64 - 1.0).collect();
            let out = eng.run(FunctionKind::Fd, &s.q, &s.qd, &tau, None, None);
            let mut ws = DynamicsWorkspace::new(&m);
            let expect = forward_dynamics(&m, &mut ws, &s.q, &s.qd, &tau, None).unwrap();
            for k in 0..m.nv() {
                assert!((out.qdd[k] - expect[k]).abs() < 1e-8 * (1.0 + expect[k].abs()));
            }
        }
    }

    #[test]
    fn did_matches_reference() {
        for m in models() {
            let eng = FunctionalEngine::new(&m, false);
            let s = random_state(&m, 3);
            let qdd: Vec<f64> = (0..m.nv()).map(|k| 0.1 * k as f64 - 0.3).collect();
            let out = eng.run(FunctionKind::DId, &s.q, &s.qd, &qdd, None, None);
            let mut ws = DynamicsWorkspace::new(&m);
            let expect = rnea_derivatives(&m, &mut ws, &s.q, &s.qd, &qdd, None);
            let (dq, dqd) = out.dtau.unwrap();
            let scale = 1.0 + expect.dtau_dq.max_abs();
            assert!(
                (&dq - &expect.dtau_dq).max_abs() / scale < 1e-9,
                "{}",
                m.name()
            );
            assert!((&dqd - &expect.dtau_dqd).max_abs() / scale < 1e-9);
        }
    }

    #[test]
    fn dfd_matches_reference() {
        for m in models() {
            let eng = FunctionalEngine::new(&m, false);
            let s = random_state(&m, 4);
            let tau: Vec<f64> = (0..m.nv()).map(|k| 0.7 - 0.05 * k as f64).collect();
            let out = eng.run(FunctionKind::DFd, &s.q, &s.qd, &tau, None, None);
            let mut ws = DynamicsWorkspace::new(&m);
            let expect = fd_derivatives(&m, &mut ws, &s.q, &s.qd, &tau, None).unwrap();
            let (dq, dqd) = out.dqdd.unwrap();
            let scale = 1.0 + expect.dqdd_dq.max_abs();
            assert!(
                (&dq - &expect.dqdd_dq).max_abs() / scale < 1e-8,
                "{}",
                m.name()
            );
            assert!((&dqd - &expect.dqdd_dqd).max_abs() / scale < 1e-8);
            for k in 0..m.nv() {
                assert!((out.qdd[k] - expect.qdd[k]).abs() < 1e-8 * (1.0 + expect.qdd[k].abs()));
            }
        }
    }

    #[test]
    fn taylor_trig_mode_close_to_exact() {
        let m = robots::iiwa();
        let s = random_state(&m, 5);
        let qdd = vec![0.2; m.nv()];
        let exact =
            FunctionalEngine::new(&m, false).run(FunctionKind::Id, &s.q, &s.qd, &qdd, None, None);
        let taylor =
            FunctionalEngine::new(&m, true).run(FunctionKind::Id, &s.q, &s.qd, &qdd, None, None);
        for k in 0..m.nv() {
            assert!(
                (exact.tau[k] - taylor.tau[k]).abs() < 1e-8 * (1.0 + exact.tau[k].abs()),
                "taylor deviation at dof {k}"
            );
        }
    }
}
