//! Dense 6×6 matrices (articulated-body inertias, transform matrices).

use crate::mat3::{mul3, mul3_tn};
use crate::{ForceVec, MotionVec, Xform};
use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Sub, SubAssign};

/// A dense 6×6 matrix backed by a flat row-major `[f64; 36]`
/// (`m[6·row + col]`).
///
/// The blocks follow the spatial layout: rows/columns 0-2 are angular,
/// 3-5 linear. Articulated-body inertias and the dense form of Plücker
/// transforms are represented with this type.
///
/// # Example
/// ```
/// use rbd_spatial::{Mat6, MotionVec};
/// let i = Mat6::identity();
/// let v = MotionVec::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
/// assert_eq!(i.mul_motion(&v), v);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat6 {
    pub(crate) m: [f64; 36],
}

impl Default for Mat6 {
    fn default() -> Self {
        Self::zero()
    }
}

impl Mat6 {
    /// Builds from row-major entries.
    #[inline]
    pub const fn from_rows(rows: [[f64; 6]; 6]) -> Self {
        let mut m = [0.0; 36];
        let mut i = 0;
        while i < 6 {
            let mut j = 0;
            while j < 6 {
                m[6 * i + j] = rows[i][j];
                j += 1;
            }
            i += 1;
        }
        Self { m }
    }

    /// Builds from flat row-major entries (`m[6·row + col]`).
    #[inline(always)]
    pub const fn from_flat(m: [f64; 36]) -> Self {
        Self { m }
    }

    /// Borrows the flat row-major entries.
    #[inline(always)]
    pub const fn as_array(&self) -> &[f64; 36] {
        &self.m
    }

    /// The zero matrix.
    #[inline]
    pub const fn zero() -> Self {
        Self { m: [0.0; 36] }
    }

    /// The identity matrix.
    pub fn identity() -> Self {
        let mut out = Self::zero();
        for i in 0..6 {
            out.m[7 * i] = 1.0;
        }
        out
    }

    /// The motion-vector matrix `[E 0; -E r× E]` of a Plücker transform.
    pub fn from_xform_motion(x: &Xform) -> Self {
        let e = &x.rot.m;
        let erx = mul3(e, &crate::Mat3::skew(x.trans).m);
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[6 * i + j] = e[3 * i + j];
                out.m[6 * (i + 3) + j + 3] = e[3 * i + j];
                out.m[6 * (i + 3) + j] = -erx[3 * i + j];
            }
        }
        out
    }

    /// The dense motion cross operator `crm(v) = [ŵ 0; v̂ ŵ]` of a
    /// motion vector `v = [ω; v]` (`x̂` = 3×3 skew): `crm(v)·m = v × m`.
    /// Reference/validation form of [`MotionVec::cross_motion`].
    pub fn cross_motion(v: &MotionVec) -> Self {
        let wx = crate::Mat3::skew(v.ang());
        let vx = crate::Mat3::skew(v.lin());
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[6 * i + j] = wx[(i, j)];
                out.m[6 * (i + 3) + j] = vx[(i, j)];
                out.m[6 * (i + 3) + j + 3] = wx[(i, j)];
            }
        }
        out
    }

    /// The dense force cross operator `crf(v) = [ŵ v̂; 0 ŵ]` of a motion
    /// vector (`crf(v) = −crm(v)ᵀ`): `crf(v)·f = v ×* f`.
    /// Reference/validation form of [`MotionVec::cross_force`].
    pub fn cross_force(v: &MotionVec) -> Self {
        let wx = crate::Mat3::skew(v.ang());
        let vx = crate::Mat3::skew(v.lin());
        let mut out = Self::zero();
        for i in 0..3 {
            for j in 0..3 {
                out.m[6 * i + j] = wx[(i, j)];
                out.m[6 * i + j + 3] = vx[(i, j)];
                out.m[6 * (i + 3) + j + 3] = wx[(i, j)];
            }
        }
        out
    }

    /// Transpose.
    pub fn transpose(&self) -> Self {
        let mut out = Self::zero();
        for i in 0..6 {
            for j in 0..6 {
                out.m[6 * j + i] = self.m[6 * i + j];
            }
        }
        out
    }

    /// Matrix × motion vector (inertia application when `self` is an
    /// articulated inertia: the result is a force) — a fully unrolled
    /// 36-term multiply–add chain over the flat backing.
    #[inline(always)]
    pub fn mul_motion_to_force(&self, v: &MotionVec) -> ForceVec {
        let a = v.as_array();
        let mut out = [0.0; 6];
        for (i, o) in out.iter_mut().enumerate() {
            let row = &self.m[6 * i..6 * i + 6];
            *o = row[0] * a[0]
                + row[1] * a[1]
                + row[2] * a[2]
                + row[3] * a[3]
                + row[4] * a[4]
                + row[5] * a[5];
        }
        ForceVec::from_array(out)
    }

    /// Batched [`Self::mul_motion_to_force`]: `out[k] = self · vs[k]`
    /// (the `U = IA·S` columns of the articulated sweeps), keeping the
    /// matrix hot across the whole batch.
    ///
    /// # Panics
    /// Panics if `out.len() != vs.len()`.
    #[inline]
    pub fn mul_motion_to_force_batch(&self, vs: &[MotionVec], out: &mut [ForceVec]) {
        assert_eq!(vs.len(), out.len(), "mul_motion_to_force_batch length");
        for (o, v) in out.iter_mut().zip(vs) {
            *o = self.mul_motion_to_force(v);
        }
    }

    /// Matrix × motion vector, returning a motion vector (transform
    /// application when `self` is a Plücker motion matrix).
    pub fn mul_motion(&self, v: &MotionVec) -> MotionVec {
        MotionVec::from_array(self.mul_motion_to_force(v).to_array())
    }

    /// Congruence transform `Xᵀ · self · X` used to shift articulated
    /// inertias between frames (`^A I = (^B X_A)ᵀ ^B I ^B X_A`).
    pub fn congruence(&self, x6: &Mat6) -> Self {
        x6.transpose() * (*self * *x6)
    }

    /// [`Self::congruence`] with the transform given directly as a
    /// Plücker [`Xform`], evaluated analytically on the `[E 0; B E]`
    /// block structure (`B = -E r×`) — twelve dense 3×3 products instead
    /// of two zero-laden 6×6 products, with no `Mat6` temporaries.
    ///
    /// Agrees with `congruence(&Mat6::from_xform_motion(x))` to rounding
    /// error (the summation order differs).
    pub fn congruence_xform(&self, x: &Xform) -> Self {
        let mut out = Self::zero();
        self.add_congruence_xform(x, &mut out);
        out
    }

    /// Fused `dest += Xᵀ · self · X` — the accumulation form used by the
    /// leaf-to-root composite/articulated inertia sweeps.
    pub fn add_congruence_xform(&self, x: &Xform, dest: &mut Mat6) {
        let e = &x.rot.m;
        let b = {
            let mut erx = mul3(e, &crate::Mat3::skew(x.trans).m);
            for v in erx.iter_mut() {
                *v = -*v;
            }
            erx
        };
        // 3×3 blocks of self: [A C; D F].
        let mut a = [0.0; 9];
        let mut c = [0.0; 9];
        let mut d = [0.0; 9];
        let mut f = [0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                a[3 * i + j] = self.m[6 * i + j];
                c[3 * i + j] = self.m[6 * i + j + 3];
                d[3 * i + j] = self.m[6 * (i + 3) + j];
                f[3 * i + j] = self.m[6 * (i + 3) + j + 3];
            }
        }
        // T = self · X.
        let t11 = add9(&mul3(&a, e), &mul3(&c, &b));
        let t12 = mul3(&c, e);
        let t21 = add9(&mul3(&d, e), &mul3(&f, &b));
        let t22 = mul3(&f, e);
        // Y = Xᵀ · T.
        let y11 = add9(&mul3_tn(e, &t11), &mul3_tn(&b, &t21));
        let y12 = add9(&mul3_tn(e, &t12), &mul3_tn(&b, &t22));
        let y21 = mul3_tn(e, &t21);
        let y22 = mul3_tn(e, &t22);
        for i in 0..3 {
            for j in 0..3 {
                dest.m[6 * i + j] += y11[3 * i + j];
                dest.m[6 * i + j + 3] += y12[3 * i + j];
                dest.m[6 * (i + 3) + j] += y21[3 * i + j];
                dest.m[6 * (i + 3) + j + 3] += y22[3 * i + j];
            }
        }
    }

    /// [`Self::add_congruence_xform`] specialised to a **symmetric**
    /// `self` (articulated/composite inertias): the congruence of a
    /// symmetric matrix is symmetric, so the upper-right result block is
    /// produced as the transpose of the lower-left one — nine 3×3
    /// products instead of twelve.
    ///
    /// For an input that is symmetric only up to rounding, the result is
    /// the congruence of its symmetric part to within machine precision
    /// (the asymmetric residual of the upper-right block is discarded).
    pub fn add_congruence_xform_sym(&self, x: &Xform, dest: &mut Mat6) {
        let e = &x.rot.m;
        let b = {
            let mut erx = mul3(e, &crate::Mat3::skew(x.trans).m);
            for v in erx.iter_mut() {
                *v = -*v;
            }
            erx
        };
        // 3×3 blocks of self: [A C; D F] with C = Dᵀ (symmetry).
        let mut a = [0.0; 9];
        let mut c = [0.0; 9];
        let mut d = [0.0; 9];
        let mut f = [0.0; 9];
        for i in 0..3 {
            for j in 0..3 {
                a[3 * i + j] = self.m[6 * i + j];
                c[3 * i + j] = self.m[6 * i + j + 3];
                d[3 * i + j] = self.m[6 * (i + 3) + j];
                f[3 * i + j] = self.m[6 * (i + 3) + j + 3];
            }
        }
        let t11 = add9(&mul3(&a, e), &mul3(&c, &b));
        let t21 = add9(&mul3(&d, e), &mul3(&f, &b));
        let t22 = mul3(&f, e);
        let y11 = add9(&mul3_tn(e, &t11), &mul3_tn(&b, &t21));
        let y21 = mul3_tn(e, &t21);
        let y22 = mul3_tn(e, &t22);
        for i in 0..3 {
            for j in 0..3 {
                dest.m[6 * i + j] += y11[3 * i + j];
                dest.m[6 * i + j + 3] += y21[3 * j + i]; // Y12 = Y21ᵀ
                dest.m[6 * (i + 3) + j] += y21[3 * i + j];
                dest.m[6 * (i + 3) + j + 3] += y22[3 * i + j];
            }
        }
    }

    /// Rank-one update `self - u uᵀ / d` used by ABA-style factorizations.
    /// `u` is a force-layout 6-vector.
    pub fn sub_outer_scaled(&mut self, u: &ForceVec, inv_d: f64) {
        let ua = u.as_array();
        for i in 0..6 {
            for j in 0..6 {
                self.m[6 * i + j] -= ua[i] * ua[j] * inv_d;
            }
        }
    }

    /// Fused rank-`k` update `self -= U · W · Uᵀ` over force-layout
    /// columns `U` with weights `w(a, b)` — the `IA - U D⁻¹ Uᵀ`
    /// articulated-inertia step of ABA/MMinvGen, evaluated in one pass so
    /// the columns stay in registers.
    ///
    /// Weight lookups returning exactly `0.0` are skipped (branch
    /// sparsity of block-diagonal `D⁻¹`).
    #[inline]
    pub fn sub_outer_weighted(&mut self, u: &[ForceVec], w: impl Fn(usize, usize) -> f64) {
        for (a, ua) in u.iter().enumerate() {
            for (b, ub) in u.iter().enumerate() {
                let wab = w(a, b);
                if wab == 0.0 {
                    continue;
                }
                let ua = ua.as_array();
                let ub = ub.as_array();
                for r in 0..6 {
                    for c in 0..6 {
                        self.m[6 * r + c] -= ua[r] * wab * ub[c];
                    }
                }
            }
        }
    }

    /// Maximum absolute entry.
    pub fn max_abs(&self) -> f64 {
        self.m.iter().fold(0.0_f64, |acc, &x| acc.max(x.abs()))
    }

    /// `true` when `‖self - selfᵀ‖∞ ≤ tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        (*self - self.transpose()).max_abs() <= tol
    }
}

/// Element-wise sum of two flat 3×3 blocks.
#[inline(always)]
fn add9(a: &[f64; 9], b: &[f64; 9]) -> [f64; 9] {
    let mut out = *a;
    for (o, x) in out.iter_mut().zip(b) {
        *o += x;
    }
    out
}

impl Add for Mat6 {
    type Output = Mat6;
    fn add(self, r: Mat6) -> Mat6 {
        let mut out = self;
        for (o, x) in out.m.iter_mut().zip(&r.m) {
            *o += x;
        }
        out
    }
}

impl AddAssign for Mat6 {
    fn add_assign(&mut self, r: Mat6) {
        for (o, x) in self.m.iter_mut().zip(&r.m) {
            *o += x;
        }
    }
}

impl Sub for Mat6 {
    type Output = Mat6;
    fn sub(self, r: Mat6) -> Mat6 {
        let mut out = self;
        for (o, x) in out.m.iter_mut().zip(&r.m) {
            *o -= x;
        }
        out
    }
}

impl SubAssign for Mat6 {
    fn sub_assign(&mut self, r: Mat6) {
        for (o, x) in self.m.iter_mut().zip(&r.m) {
            *o -= x;
        }
    }
}

impl Mul<f64> for Mat6 {
    type Output = Mat6;
    fn mul(self, s: f64) -> Mat6 {
        let mut out = self;
        for x in out.m.iter_mut() {
            *x *= s;
        }
        out
    }
}

impl Mul<Mat6> for Mat6 {
    type Output = Mat6;
    fn mul(self, rhs: Mat6) -> Mat6 {
        let mut out = Mat6::zero();
        for i in 0..6 {
            for k in 0..6 {
                let a = self.m[6 * i + k];
                if a == 0.0 {
                    continue;
                }
                let b_row = &rhs.m[6 * k..6 * k + 6];
                let out_row = &mut out.m[6 * i..6 * i + 6];
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += a * bv;
                }
            }
        }
        out
    }
}

impl Index<(usize, usize)> for Mat6 {
    type Output = f64;
    #[inline(always)]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.m[6 * i + j]
    }
}

impl IndexMut<(usize, usize)> for Mat6 {
    #[inline(always)]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.m[6 * i + j]
    }
}

impl fmt::Display for Mat6 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..6 {
            let row = &self.m[6 * r..6 * r + 6];
            writeln!(
                f,
                "[{:9.4} {:9.4} {:9.4} {:9.4} {:9.4} {:9.4}]",
                row[0], row[1], row[2], row[3], row[4], row[5]
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Vec3;

    #[test]
    fn xform_matrix_matches_apply_motion() {
        let x = Xform::rot_axis(Vec3::new(1.0, 0.3, -0.2).normalized(), 0.9)
            .with_translation(Vec3::new(0.1, 0.4, -0.6));
        let m6 = Mat6::from_xform_motion(&x);
        let v = MotionVec::from_slice(&[0.2, -0.3, 0.8, 1.0, 0.5, -0.1]);
        let lhs = m6.mul_motion(&v);
        let rhs = x.apply_motion(&v);
        assert!((lhs - rhs).max_abs() < 1e-12);
    }

    #[test]
    fn xform_transpose_matches_inv_apply_force() {
        // (^B X_A)ᵀ applied to a force-layout vector equals ^A X_B^* f.
        let x = Xform::rot_y(0.4).with_translation(Vec3::new(0.3, -0.2, 0.7));
        let m6 = Mat6::from_xform_motion(&x).transpose();
        let f = ForceVec::from_slice(&[0.1, 0.9, -0.4, 2.0, 0.3, 0.6]);
        let lhs = {
            let fm = MotionVec::new(f.ang(), f.lin());
            let out = m6.mul_motion(&fm);
            ForceVec::new(out.ang(), out.lin())
        };
        let rhs = x.inv_apply_force(&f);
        assert!((lhs - rhs).max_abs() < 1e-12);
    }

    #[test]
    fn congruence_preserves_symmetry() {
        let mut s = Mat6::identity();
        s[(0, 3)] = 0.5;
        s[(3, 0)] = 0.5;
        s[(1, 1)] = 4.0;
        let x =
            Mat6::from_xform_motion(&Xform::rot_z(1.2).with_translation(Vec3::new(0.0, 1.0, 0.5)));
        let t = s.congruence(&x);
        assert!(t.is_symmetric(1e-12));
    }

    #[test]
    fn congruence_xform_matches_dense() {
        let x = Xform::rot_axis(Vec3::new(0.4, -0.2, 0.9).normalized(), 0.77)
            .with_translation(Vec3::new(0.3, -0.8, 0.2));
        // A generic (not even symmetric) matrix: the block evaluation must
        // agree with the dense congruence for arbitrary input.
        let mut s = Mat6::zero();
        for i in 0..6 {
            for j in 0..6 {
                s[(i, j)] = 0.1 * (i * 6 + j) as f64 - 0.7 + if i == j { 3.0 } else { 0.0 };
            }
        }
        let dense = s.congruence(&Mat6::from_xform_motion(&x));
        let fast = s.congruence_xform(&x);
        assert!((dense - fast).max_abs() < 1e-12 * (1.0 + dense.max_abs()));

        // The accumulate form adds on top of existing content.
        let mut acc = Mat6::identity();
        s.add_congruence_xform(&x, &mut acc);
        assert!((acc - (fast + Mat6::identity())).max_abs() < 1e-15);
    }

    #[test]
    fn rank_one_update() {
        let mut a = Mat6::identity();
        let u = ForceVec::from_slice(&[1.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
        a.sub_outer_scaled(&u, 0.5);
        assert!((a[(0, 0)] - 0.5).abs() < 1e-15);
        assert!((a[(0, 5)] + 1.0).abs() < 1e-15);
        assert!((a[(5, 5)] + 1.0).abs() < 1e-15);
        assert!(a.is_symmetric(1e-15));
    }

    #[test]
    fn weighted_rank_k_matches_reference_loop() {
        let u = [
            ForceVec::from_slice(&[1.0, 0.5, -0.2, 0.3, 0.0, 2.0]),
            ForceVec::from_slice(&[-0.4, 1.5, 0.2, 0.0, 0.7, -0.3]),
        ];
        let dinv = [[2.0, 0.5], [0.5, 1.2]];
        let mut fast = Mat6::identity();
        fast.sub_outer_weighted(&u, |a, b| dinv[a][b]);
        let mut slow = Mat6::identity();
        for a in 0..2 {
            for b in 0..2 {
                let ua = u[a].to_array();
                let ub = u[b].to_array();
                for r in 0..6 {
                    for c in 0..6 {
                        slow[(r, c)] -= ua[r] * dinv[a][b] * ub[c];
                    }
                }
            }
        }
        assert_eq!(fast.as_array(), slow.as_array());
    }

    #[test]
    fn batched_apply_matches_scalar() {
        let x = Xform::rot_x(0.3).with_translation(Vec3::new(1.0, 2.0, 3.0));
        let m6 = Mat6::from_xform_motion(&x);
        let vs: Vec<MotionVec> = (0..5)
            .map(|k| MotionVec::from_slice(&[0.1 * k as f64, -0.2, 0.3, 0.4, 0.5 - k as f64, 0.6]))
            .collect();
        let mut out = vec![ForceVec::zero(); 5];
        m6.mul_motion_to_force_batch(&vs, &mut out);
        for (v, o) in vs.iter().zip(&out) {
            assert_eq!(o.to_array(), m6.mul_motion_to_force(v).to_array());
        }
    }

    #[test]
    fn mul_associates_with_identity() {
        let x =
            Mat6::from_xform_motion(&Xform::rot_x(0.3).with_translation(Vec3::new(1.0, 2.0, 3.0)));
        let p = x * Mat6::identity();
        assert!((p - x).max_abs() < 1e-15);
    }
}
