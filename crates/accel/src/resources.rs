//! FPGA resource model: DSP/FF/LUT/BRAM usage per submodule and per
//! configuration, checked against the XCVU9P device the paper (and
//! Robomorphic) target.

use crate::ops::OpCount;
use crate::submodule::Submodule;
use std::fmt;
use std::ops::{Add, AddAssign};

/// Resource usage of a module or a whole configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResourceUsage {
    /// DSP48 slices.
    pub dsp: usize,
    /// Flip-flops.
    pub ff: usize,
    /// Lookup tables.
    pub lut: usize,
    /// Block RAMs (36 kb).
    pub bram: usize,
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, r: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            dsp: self.dsp + r.dsp,
            ff: self.ff + r.ff,
            lut: self.lut + r.lut,
            bram: self.bram + r.bram,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, r: ResourceUsage) {
        *self = *self + r;
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DSP {} / FF {} / LUT {} / BRAM {}",
            self.dsp, self.ff, self.lut, self.bram
        )
    }
}

/// An FPGA device's capacities.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FpgaDevice {
    /// Marketing name.
    pub name: &'static str,
    /// Available DSP slices.
    pub dsp: usize,
    /// Available flip-flops.
    pub ff: usize,
    /// Available LUTs.
    pub lut: usize,
    /// Available BRAM36 blocks.
    pub bram: usize,
}

impl FpgaDevice {
    /// Xilinx Virtex UltraScale+ VU9P — the chip used by both
    /// Robomorphic and Dadu-RBD (Table II).
    pub const fn xcvu9p() -> Self {
        Self {
            name: "XCVU9P",
            dsp: 6840,
            ff: 2_364_480,
            lut: 1_182_240,
            bram: 2160,
        }
    }

    /// Utilisation fractions `(dsp, ff, lut, bram)` of a usage on this
    /// device.
    pub fn utilization(&self, u: &ResourceUsage) -> (f64, f64, f64, f64) {
        (
            u.dsp as f64 / self.dsp as f64,
            u.ff as f64 / self.ff as f64,
            u.lut as f64 / self.lut as f64,
            u.bram as f64 / self.bram as f64,
        )
    }

    /// `true` when the usage fits the device.
    pub fn fits(&self, u: &ResourceUsage) -> bool {
        u.dsp <= self.dsp && u.ff <= self.ff && u.lut <= self.lut && u.bram <= self.bram
    }
}

/// Per-lane / per-op conversion constants, calibrated so the paper's
/// quadruped-with-arm configuration lands near its reported 62% DSP /
/// 17% FF / 54% LUT on the XCVU9P (§VI-C).
pub mod coef {
    /// DSPs per multiplier lane (wide fixed-point products cascade two
    /// DSP48s).
    pub const DSP_PER_LANE: usize = 2;
    /// FFs per lane (operand/pipeline registers).
    pub const FF_PER_LANE: usize = 180;
    /// LUTs per lane (routing + alignment).
    pub const LUT_PER_LANE: usize = 220;
    /// LUTs per addition (fabric adders).
    pub const LUT_PER_ADD: usize = 18;
    /// FFs per addition.
    pub const FF_PER_ADD: usize = 8;
    /// LUTs of fixed control overhead per submodule.
    pub const LUT_PER_STAGE: usize = 600;
    /// FFs of fixed control overhead per submodule.
    pub const FF_PER_STAGE: usize = 400;
    /// BRAMs per FIFO stream buffer.
    pub const BRAM_PER_FIFO: usize = 2;
    /// Resources of one reciprocal unit (fixed↔float converter,
    /// §IV-B2).
    pub const RECIP_DSP: usize = 8;
    /// LUTs of one reciprocal unit.
    pub const RECIP_LUT: usize = 900;
    /// Resources of one trigonometric Taylor pipeline.
    pub const TRIG_DSP: usize = 14;
    /// LUTs of one trig pipeline.
    pub const TRIG_LUT: usize = 800;
}

/// Resource usage of one submodule given its lane allocation.
pub fn submodule_usage(sub: &Submodule) -> ResourceUsage {
    let adds_per_cycle = sub.ops.add.div_ceil(sub.ii_cycles().max(1));
    ResourceUsage {
        dsp: sub.lanes * coef::DSP_PER_LANE + sub.ops.recip * coef::RECIP_DSP,
        ff: sub.lanes * coef::FF_PER_LANE + adds_per_cycle * coef::FF_PER_ADD + coef::FF_PER_STAGE,
        lut: sub.lanes * coef::LUT_PER_LANE
            + adds_per_cycle * coef::LUT_PER_ADD
            + coef::LUT_PER_STAGE
            + sub.ops.recip * coef::RECIP_LUT,
        bram: coef::BRAM_PER_FIFO,
    }
}

/// Resource usage of a Global Trigonometric Module serving `n_trig`
/// simultaneous sin/cos evaluations.
pub fn trig_module_usage(n_trig: usize) -> ResourceUsage {
    ResourceUsage {
        dsp: n_trig * coef::TRIG_DSP,
        ff: n_trig * 500,
        lut: n_trig * coef::TRIG_LUT,
        bram: 1,
    }
}

/// Resource usage of the scheduling system (Input Stream, Schedule,
/// Feedback, Decode, Encode) including the shared `A(x-y)` matrix unit
/// sized for `nv` DOF (Fig 9c).
pub fn scheduler_usage(nv: usize) -> ResourceUsage {
    let matvec_ops = crate::ops::sym_matvec_cost(nv);
    let lanes = matvec_ops.mul.div_ceil(4).max(8);
    ResourceUsage {
        dsp: lanes * coef::DSP_PER_LANE,
        ff: 30_000 + lanes * coef::FF_PER_LANE,
        lut: 40_000 + lanes * coef::LUT_PER_LANE,
        bram: 24,
    }
}

/// Aggregate from an OpCount at a given lane count — helper for ad-hoc
/// estimates in the figure bins.
pub fn usage_for_ops(ops: &OpCount, lanes: usize) -> ResourceUsage {
    let sub = Submodule {
        kind: crate::submodule::SubmoduleKind::Rf,
        body: 0,
        level: 1,
        mult: 1,
        ops: *ops,
        lanes: lanes.max(1),
    };
    submodule_usage(&sub)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;
    use crate::submodule::SubmoduleKind;
    use rbd_model::JointType;

    #[test]
    fn device_capacities() {
        let d = FpgaDevice::xcvu9p();
        assert_eq!(d.dsp, 6840);
        let u = ResourceUsage {
            dsp: 3420,
            ff: 0,
            lut: 0,
            bram: 0,
        };
        assert!((d.utilization(&u).0 - 0.5).abs() < 1e-12);
        assert!(d.fits(&u));
        let over = ResourceUsage {
            dsp: 7000,
            ..Default::default()
        };
        assert!(!d.fits(&over));
    }

    #[test]
    fn more_lanes_more_dsp() {
        let jt = JointType::revolute_z();
        let mk = |lanes| Submodule {
            kind: SubmoduleKind::Rf,
            body: 0,
            level: 1,
            mult: 1,
            ops: ops::rf_cost(&jt),
            lanes,
        };
        assert!(submodule_usage(&mk(32)).dsp > submodule_usage(&mk(8)).dsp);
    }

    #[test]
    fn reciprocal_units_show_up() {
        let jt = JointType::revolute_z();
        let with = Submodule {
            kind: SubmoduleKind::Mb,
            body: 0,
            level: 1,
            mult: 1,
            ops: ops::mb_cost(&jt, 3),
            lanes: 8,
        };
        let without = Submodule {
            kind: SubmoduleKind::Rb,
            body: 0,
            level: 1,
            mult: 1,
            ops: ops::rb_cost(&jt),
            lanes: 8,
        };
        assert!(submodule_usage(&with).dsp > submodule_usage(&without).dsp);
    }

    #[test]
    fn usage_addition() {
        let a = ResourceUsage {
            dsp: 1,
            ff: 2,
            lut: 3,
            bram: 4,
        };
        let mut s = a;
        s += a;
        assert_eq!(s, a + a);
        assert_eq!(s.dsp, 2);
        assert_eq!(s.bram, 8);
    }
}
