//! Robot kinematic-tree modelling for the Dadu-RBD reproduction.
//!
//! A robot is an open kinematic tree (§II of the paper): `NB` links, each
//! attached to a parent by a joint with a type-specific motion subspace
//! `S_i ∈ R^{6×n_i}`. This crate provides:
//!
//! * [`JointType`] / [`Joint`] — revolute, prismatic, spherical, planar,
//!   3-DOF translation and 6-DOF floating joints, their joint transforms
//!   `X_J(q)`, motion subspaces and configuration-space integration
//!   (tangent-space `⊕`, quaternion-aware);
//! * [`RobotModel`] and [`ModelBuilder`] — the model container with the
//!   `tree(i)`/`treee(i)` subtree sets, ancestor queries, depths and
//!   branch decomposition used by the Structure-Adaptive Pipelines;
//! * [`Topology::reroot`](tree::Topology::reroot) — the Atlas-style topology re-rooting optimisation
//!   (§V-C1, Fig 11c) that reduces tree depth;
//! * [`robots`] — the concrete evaluation robots of the paper (LBR iiwa,
//!   HyQ, Atlas, Spot-arm, Tiago) plus synthetic chains and random trees
//!   for property-based testing.
//!
//! # Example
//!
//! ```
//! use rbd_model::robots;
//! let iiwa = robots::iiwa();
//! assert_eq!(iiwa.num_bodies(), 7);
//! assert_eq!(iiwa.nv(), 7);
//! let hyq = robots::hyq();
//! assert_eq!(hyq.nv(), 18); // 6-DOF floating base + 4 × 3-DOF legs
//! ```

pub mod joint;
pub mod robot;
pub mod robots;
pub mod state;
pub mod tree;

pub use joint::{Joint, JointType};
pub use robot::{ModelBuilder, RobotModel};
pub use state::{
    integrate_config, integrate_config_into, random_state, JointPosition, RobotState, SplitMix64,
};
pub use tree::Topology;
