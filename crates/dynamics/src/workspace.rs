//! Shared per-model scratch buffers (the "data" of a model/data split).

use rbd_model::RobotModel;
use rbd_spatial::{ForceVec, Mat6, MotionVec, Xform};

/// Pre-allocated buffers for the dynamics algorithms.
///
/// Create one per model (and per thread) and reuse it across calls; all
/// algorithms in this crate only write into these buffers and perform no
/// steady-state allocation on the hot path (matrices returned to the
/// caller are the exception).
#[derive(Debug, Clone)]
pub struct DynamicsWorkspace {
    /// Local (child-frame) motion-subspace columns per body — constant.
    pub s: Vec<Vec<MotionVec>>,
    /// Parent→child transform `^i X_λi` per body.
    pub xup: Vec<Xform>,
    /// World→body transform `^i X_0` per body.
    pub xworld: Vec<Xform>,
    /// Spatial velocity per body (local coordinates).
    pub v: Vec<MotionVec>,
    /// Spatial acceleration per body (local coordinates).
    pub a: Vec<MotionVec>,
    /// Net body force per body; consumed by the backward pass.
    pub f: Vec<ForceVec>,
    /// Output joint torques.
    pub tau: Vec<f64>,
    /// Composite / articulated inertia scratch (CRBA, ABA, MMinvGen).
    pub ia: Vec<Mat6>,
    /// ABA bias forces.
    pub pa: Vec<ForceVec>,
    /// ABA velocity-product accelerations `c_i = v_i × vJ_i`.
    pub c_bias: Vec<MotionVec>,
    /// World-frame motion-subspace columns per DOF (derivatives).
    pub s_world: Vec<MotionVec>,
    /// World-frame velocity per body (derivatives).
    pub v_world: Vec<MotionVec>,
    /// World-frame acceleration per body (derivatives).
    pub a_world: Vec<MotionVec>,
}

impl DynamicsWorkspace {
    /// Allocates buffers sized for `model`.
    pub fn new(model: &RobotModel) -> Self {
        let nb = model.num_bodies();
        let nv = model.nv();
        Self {
            s: (0..nb)
                .map(|i| model.joint(i).jtype.motion_subspace())
                .collect(),
            xup: vec![Xform::identity(); nb],
            xworld: vec![Xform::identity(); nb],
            v: vec![MotionVec::zero(); nb],
            a: vec![MotionVec::zero(); nb],
            f: vec![ForceVec::zero(); nb],
            tau: vec![0.0; nv],
            ia: vec![Mat6::zero(); nb],
            pa: vec![ForceVec::zero(); nb],
            c_bias: vec![MotionVec::zero(); nb],
            s_world: vec![MotionVec::zero(); nv],
            v_world: vec![MotionVec::zero(); nb],
            a_world: vec![MotionVec::zero(); nb],
        }
    }

    /// Recomputes `xup` and `xworld` for configuration `q` (forward
    /// kinematics). All dynamics entry points call this themselves; it is
    /// public for use by tests and the accelerator's functional model.
    pub fn update_kinematics(&mut self, model: &RobotModel, q: &[f64]) {
        for i in 0..model.num_bodies() {
            let xup = model.joint(i).child_xform(model.q_slice(i, q));
            self.xworld[i] = match model.topology().parent(i) {
                Some(p) => xup.compose(&self.xworld[p]),
                None => xup,
            };
            self.xup[i] = xup;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_model::robots;
    use rbd_spatial::Vec3;

    #[test]
    fn sizes_match_model() {
        let m = robots::atlas();
        let ws = DynamicsWorkspace::new(&m);
        assert_eq!(ws.s.len(), m.num_bodies());
        assert_eq!(ws.tau.len(), m.nv());
        assert_eq!(ws.s_world.len(), m.nv());
        let total_cols: usize = ws.s.iter().map(|s| s.len()).sum();
        assert_eq!(total_cols, m.nv());
    }

    #[test]
    fn world_transforms_compose() {
        let m = robots::iiwa();
        let mut ws = DynamicsWorkspace::new(&m);
        let q: Vec<f64> = (0..7).map(|k| 0.1 * (k as f64 + 1.0)).collect();
        ws.update_kinematics(&m, &q);
        // ^6X_0 must equal ^6X_5 ∘ ^5X_0.
        let composed = ws.xup[6].compose(&ws.xworld[5]);
        assert!((composed.rot - ws.xworld[6].rot).max_abs() < 1e-12);
        assert!((composed.trans - ws.xworld[6].trans).max_abs() < 1e-12);
    }

    #[test]
    fn neutral_chain_stacks_links() {
        let m = robots::serial_chain(4);
        let mut ws = DynamicsWorkspace::new(&m);
        ws.update_kinematics(&m, &m.neutral_config());
        // Body 3's origin sits 3 × 0.3 m up in world coordinates
        // (`trans` of `^3X_0` is the origin of frame 3 expressed in world).
        let p = ws.xworld[3].trans;
        assert!((p - Vec3::new(0.0, 0.0, 0.9)).max_abs() < 1e-12);
    }
}
