//! # dadu-rbd
//!
//! Facade crate of the Dadu-RBD reproduction (MICRO 2023): a
//! multifunctional robot rigid-body-dynamics accelerator, rebuilt as a
//! functional + cycle-level simulator in Rust together with every
//! substrate it depends on.
//!
//! | Re-export | Contents |
//! |-----------|----------|
//! | [`spatial`] | Featherstone spatial algebra, small dense linear algebra |
//! | [`model`] | joints, links, kinematic trees, the paper's robots |
//! | [`dynamics`] | RNEA, CRBA, ABA, MMinvGen (Alg 2), analytical ΔRNEA/ΔFD |
//! | [`fixed`] | fixed-point datapath, Taylor trig, fast reciprocal |
//! | [`accel`] | the Dadu-RBD simulator (RTP, SAP, dataflow, resources, power) |
//! | [`baselines`] | calibrated CPU/GPU/Robomorphic device models, host harness |
//! | [`trajopt`] | RK4 sensitivities, iLQR, the MPC workload, Fig 13 scheduling |
//!
//! # Quickstart
//!
//! ```
//! use dadu_rbd::accel::{AccelConfig, DaduRbd, FunctionKind};
//! use dadu_rbd::model::{robots, random_state};
//!
//! let model = robots::iiwa();
//! let accel = DaduRbd::configure(&model, AccelConfig::default());
//! let s = random_state(&model, 0);
//! let out = accel.run_id(&s.q, &s.qd, &vec![0.0; model.nv()], None);
//! assert_eq!(out.tau.len(), 7);
//! let t = accel.estimate(FunctionKind::DiFd, 256);
//! assert!(t.throughput_tasks_per_s > 1e6);
//! ```
//!
//! See `README.md` for the architecture overview, `DESIGN.md` for the
//! system inventory and `EXPERIMENTS.md` for the paper-vs-measured
//! record; `cargo run -p rbd-bench --bin <figure>` regenerates each
//! evaluation artifact.

pub use rbd_accel as accel;
pub use rbd_baselines as baselines;
pub use rbd_dynamics as dynamics;
pub use rbd_fixed as fixed;
pub use rbd_model as model;
pub use rbd_spatial as spatial;
pub use rbd_trajopt as trajopt;
