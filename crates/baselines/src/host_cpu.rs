//! Real host-CPU measurements of the `rbd-dynamics` kernels — the live
//! counterpart of the paper's Pinocchio baselines, used by Fig 2 and as
//! a sanity check that the modelled cost ratios between functions are
//! real.

use rbd_accel::FunctionKind;
use rbd_dynamics::{
    fd_derivatives_into, forward_dynamics_into, mminv_gen_into, rnea_derivatives_into, rnea_in_ws,
    DynamicsWorkspace, FdDerivatives, RneaDerivatives,
};
use rbd_model::{random_state, RobotModel};
use rbd_spatial::MatN;
use std::time::Instant;

/// One measurement result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostMeasurement {
    /// Total wall time, seconds.
    pub seconds: f64,
    /// Tasks executed.
    pub tasks: u64,
}

impl HostMeasurement {
    /// Seconds per task.
    pub fn latency_s(&self) -> f64 {
        self.seconds / self.tasks as f64
    }

    /// Tasks per second.
    pub fn throughput(&self) -> f64 {
        self.tasks as f64 / self.seconds
    }
}

/// Per-thread reusable outputs so the measured loop exercises the same
/// zero-allocation fast path the accelerator comparison is made against.
struct HostScratch {
    qdd: Vec<f64>,
    m: MatN,
    did: RneaDerivatives,
    dfd: FdDerivatives,
}

impl HostScratch {
    fn new(model: &RobotModel) -> Self {
        let nv = model.nv();
        Self {
            qdd: vec![0.0; nv],
            m: MatN::zeros(nv, nv),
            did: RneaDerivatives::zeros(nv),
            dfd: FdDerivatives::zeros(nv),
        }
    }
}

/// Executes one function once (workload body shared by all harnesses).
fn run_once(
    model: &RobotModel,
    ws: &mut DynamicsWorkspace,
    scratch: &mut HostScratch,
    f: FunctionKind,
    q: &[f64],
    qd: &[f64],
    u: &[f64],
) {
    match f {
        FunctionKind::Id => {
            rnea_in_ws(model, ws, q, qd, u, None, 1.0);
            std::hint::black_box(&ws.tau);
        }
        FunctionKind::Fd => {
            forward_dynamics_into(model, ws, q, qd, u, None, &mut scratch.qdd).expect("fd");
            std::hint::black_box(&scratch.qdd);
        }
        FunctionKind::MassMatrix => {
            mminv_gen_into(model, ws, q, Some(&mut scratch.m), None).expect("m");
            std::hint::black_box(&scratch.m);
        }
        FunctionKind::MassMatrixInverse => {
            mminv_gen_into(model, ws, q, None, Some(&mut scratch.m)).expect("minv");
            std::hint::black_box(&scratch.m);
        }
        FunctionKind::DId => {
            rnea_derivatives_into(model, ws, q, qd, u, None, &mut scratch.did);
            std::hint::black_box(&scratch.did);
        }
        FunctionKind::DFd | FunctionKind::DiFd => {
            fd_derivatives_into(model, ws, q, qd, u, None, &mut scratch.dfd).expect("dfd");
            std::hint::black_box(&scratch.dfd);
        }
    }
}

/// Measures `batch` tasks of `f` on `threads` OS threads (the paper's
/// multi-threaded throughput methodology; `threads == 1` gives the
/// latency methodology).
pub fn measure_function(
    model: &RobotModel,
    f: FunctionKind,
    batch: usize,
    threads: usize,
    repeats: usize,
) -> HostMeasurement {
    let threads = threads.max(1);
    let states: Vec<_> = (0..batch.max(1))
        .map(|i| random_state(model, i as u64))
        .collect();
    let u: Vec<f64> = (0..model.nv())
        .map(|k| 0.2 * (k % 3) as f64 - 0.1)
        .collect();

    let start = Instant::now();
    for _ in 0..repeats.max(1) {
        if threads == 1 {
            let mut ws = DynamicsWorkspace::new(model);
            let mut scratch = HostScratch::new(model);
            for s in &states {
                run_once(model, &mut ws, &mut scratch, f, &s.q, &s.qd, &u);
            }
        } else {
            std::thread::scope(|scope| {
                let chunk = states.len().div_ceil(threads);
                for part in states.chunks(chunk) {
                    let u = &u;
                    scope.spawn(move || {
                        let mut ws = DynamicsWorkspace::new(model);
                        let mut scratch = HostScratch::new(model);
                        for s in part {
                            run_once(model, &mut ws, &mut scratch, f, &s.q, &s.qd, u);
                        }
                    });
                }
            });
        }
    }
    HostMeasurement {
        seconds: start.elapsed().as_secs_f64(),
        tasks: (batch.max(1) * repeats.max(1)) as u64,
    }
}

/// Thread-scaling curve (relative time vs thread count) for the Fig 2b
/// reproduction: returns `(threads, relative_time)` with 1 thread = 1.0.
pub fn thread_scaling(
    model: &RobotModel,
    f: FunctionKind,
    batch: usize,
    thread_counts: &[usize],
    repeats: usize,
) -> Vec<(usize, f64)> {
    let base = measure_function(model, f, batch, 1, repeats).seconds;
    thread_counts
        .iter()
        .map(|&t| {
            let m = measure_function(model, f, batch, t, repeats);
            (t, m.seconds / base)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rbd_model::robots;

    #[test]
    fn measurement_counts_tasks() {
        let m = robots::iiwa();
        let r = measure_function(&m, FunctionKind::Id, 32, 1, 2);
        assert_eq!(r.tasks, 64);
        assert!(r.seconds > 0.0);
        assert!(r.latency_s() > 0.0);
        assert!(r.throughput() > 0.0);
    }

    #[test]
    fn derivatives_slower_than_id_on_host() {
        let m = robots::iiwa();
        let id = measure_function(&m, FunctionKind::Id, 64, 1, 4);
        let dfd = measure_function(&m, FunctionKind::DFd, 64, 1, 4);
        assert!(
            dfd.latency_s() > 2.0 * id.latency_s(),
            "dFD {} vs ID {}",
            dfd.latency_s(),
            id.latency_s()
        );
    }

    #[test]
    fn multithreading_does_not_slow_down_large_batches() {
        // Meaningful only with real parallelism available.
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores < 2 {
            return;
        }
        let m = robots::hyq();
        let t1 = measure_function(&m, FunctionKind::DId, 256, 1, 2);
        let t4 = measure_function(&m, FunctionKind::DId, 256, cores.min(4), 2);
        // Allow generous slack for CI noise; threads should at least not
        // be slower than single-threaded.
        assert!(
            t4.seconds < t1.seconds * 1.2,
            "{}T {} vs 1T {}",
            cores.min(4),
            t4.seconds,
            t1.seconds
        );
    }
}
